file(REMOVE_RECURSE
  "libstarring_routing.a"
)
