// Star-graph routing and communication substrate.
//
// The paper motivates ring embedding by the star graph's role as an
// interconnection topology; the surrounding literature it cites
// (shortest-path routing [1], broadcasting [31], fault-tolerant routing)
// is what actually runs on the machine.  This module provides:
//
//  * exact distance: the classic Akers-Krishnamurthy cycle formula —
//    writing the vertex (as a permutation to be sorted to the identity)
//    in cycle form, with k symbols out of place in c nontrivial cycles,
//      dist = k + c            if position 0 holds symbol 0,
//      dist = k + c - 2        otherwise;
//  * an optimal router producing one shortest move sequence;
//  * the diameter floor(3(n-1)/2) (verified against BFS in tests);
//  * fault-tolerant routing: BFS through the healthy subgraph, used by
//    the examples to route around failed processors;
//  * single-port broadcasting along a recursive dimension schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "perm/permutation.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {

/// Minimum number of star moves taking `p` to the identity.
int star_distance(const Perm& p);

/// Minimum number of star moves between two vertices (the star graph is
/// vertex-transitive: dist(a, b) = dist(b^-1 ∘ a sorted relative to b)).
int star_distance(const Perm& a, const Perm& b);

/// Diameter of S_n: floor(3(n-1)/2).
int star_diameter(int n);

/// One optimal route from `from` to `to`: the sequence of intermediate
/// vertices (excluding `from`, including `to`).  Empty when from == to.
std::vector<Perm> shortest_route(const Perm& from, const Perm& to);

/// BFS route through the healthy subgraph, avoiding faulty vertices and
/// edges.  Returns the intermediate vertices (excluding `from`,
/// including `to`), or nullopt when `to` is unreachable.  Both
/// endpoints must be healthy.
std::optional<std::vector<Perm>> fault_tolerant_route(const StarGraph& g,
                                                      const FaultSet& faults,
                                                      const Perm& from,
                                                      const Perm& to);

/// Single-port broadcast schedule from `source`: round r lists the
/// (sender, receiver) pairs active in that round; every vertex is
/// reached exactly once.  The schedule uses the doubling strategy —
/// informed vertices take turns expanding along dimensions — and
/// completes in O(n log n) rounds (tests pin the exact counts).
struct BroadcastSchedule {
  std::vector<std::vector<std::pair<VertexId, VertexId>>> rounds;
  std::size_t num_rounds() const { return rounds.size(); }
};
BroadcastSchedule broadcast_schedule(const StarGraph& g, const Perm& source);

/// n-1 internally vertex-disjoint s-t paths (maximal fault tolerance:
/// the connectivity of S_n equals its degree).  Each path is the full
/// vertex sequence from s to t.  `net` must be g.materialize() — passed
/// in so callers amortize the materialization across queries.
std::vector<std::vector<Perm>> star_disjoint_paths(const StarGraph& g,
                                                   const Graph& net,
                                                   const Perm& s,
                                                   const Perm& t);

/// Diameter of the healthy subgraph: the largest BFS distance between
/// healthy vertices, routing only through healthy vertices and links.
/// Returns -1 when the healthy subgraph is disconnected.  Exhaustive
/// all-sources BFS over the materialized graph — the fault-diameter
/// characterization of the literature the paper cites ([28]); intended
/// for n <= 7.
int healthy_diameter(const StarGraph& g, const FaultSet& faults);

}  // namespace starring
