// Generic graph toolkit.
//
// The star graph S_n is usually manipulated symbolically (see
// src/stargraph), but the library also needs an explicit graph form:
//  * to independently verify embedded rings and paths,
//  * to run exhaustive longest-cycle searches for the optimality
//    experiments (E3), and
//  * as the substrate of the discrete-event simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace starring {

/// Simple undirected graph over dense vertex ids [0, num_vertices).
/// Stored as sorted adjacency lists; construction is edge-list based.
class Graph {
 public:
  explicit Graph(std::size_t num_vertices) : adj_(num_vertices) {}

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Add an undirected edge.  Duplicate edges are ignored.
  void add_edge(std::uint64_t u, std::uint64_t v);

  /// True iff the undirected edge {u, v} is present.  O(log deg).
  bool has_edge(std::uint64_t u, std::uint64_t v) const;

  /// Neighbours of u in ascending order.
  std::span<const std::uint64_t> neighbors(std::uint64_t u) const {
    return adj_[u];
  }

  std::size_t degree(std::uint64_t u) const { return adj_[u].size(); }

 private:
  std::vector<std::vector<std::uint64_t>> adj_;
  std::size_t num_edges_ = 0;
};

/// True iff `cycle` lists distinct vertices forming a cycle in `g`
/// (consecutive vertices adjacent, last adjacent to first).  A cycle
/// needs length >= 3.
bool is_valid_cycle(const Graph& g, std::span<const std::uint64_t> cycle);

/// True iff `path` lists distinct vertices with consecutive ones adjacent.
bool is_valid_path(const Graph& g, std::span<const std::uint64_t> path);

/// 2-colouring result of a connected component scan.
struct BipartiteResult {
  bool is_bipartite = false;
  /// colour[v] in {0,1}; only meaningful when is_bipartite.
  std::vector<std::uint8_t> color;
};

/// BFS 2-colouring over all components.
BipartiteResult check_bipartite(const Graph& g);

/// Number of vertices reachable from `start` skipping vertices marked
/// true in `blocked` (blocked[start] must be false).
std::size_t reachable_count(const Graph& g, std::uint64_t start,
                            std::span<const std::uint8_t> blocked);

// ---------------------------------------------------------------------
// Exhaustive search on small graphs (<= 64 vertices).
//
// These are deliberately exact: they back the optimality experiments and
// the S4 in-block path oracle, where the paper's case analysis is
// replaced by exhaustive enumeration over a 24-vertex block.
// ---------------------------------------------------------------------

/// Small dense graph: adjacency as 64-bit masks, vertex ids [0, n), n <= 64.
class SmallGraph {
 public:
  explicit SmallGraph(int n) : adj_(static_cast<std::size_t>(n), 0), n_(n) {}

  int size() const { return n_; }

  void add_edge(int u, int v) {
    adj_[static_cast<std::size_t>(u)] |= (1ULL << v);
    adj_[static_cast<std::size_t>(v)] |= (1ULL << u);
  }

  void remove_edge(int u, int v) {
    adj_[static_cast<std::size_t>(u)] &= ~(1ULL << v);
    adj_[static_cast<std::size_t>(v)] &= ~(1ULL << u);
  }

  bool has_edge(int u, int v) const {
    return (adj_[static_cast<std::size_t>(u)] >> v) & 1ULL;
  }

  std::uint64_t neighbor_mask(int u) const {
    return adj_[static_cast<std::size_t>(u)];
  }

 private:
  std::vector<std::uint64_t> adj_;
  int n_;
};

/// Longest simple path from `from` to `to` avoiding vertices in
/// `forbidden` (bitmask).  Returns the vertex sequence (including both
/// endpoints) of one maximum-length such path, or nullopt when no path
/// exists.  Exhaustive branch-and-bound; intended for n <= ~26.
std::optional<std::vector<int>> longest_path(const SmallGraph& g, int from,
                                             int to, std::uint64_t forbidden);

/// Like longest_path but stops as soon as a path visiting exactly
/// `target_vertices` vertices is found.  Much faster when such a path
/// exists; returns nullopt when it provably does not.
std::optional<std::vector<int>> path_with_exact_vertices(
    const SmallGraph& g, int from, int to, std::uint64_t forbidden,
    int target_vertices);

/// Length (vertex count) of a longest simple cycle avoiding `forbidden`,
/// together with one witness cycle.  Returns 0/empty when the remaining
/// graph has no cycle.  Exhaustive; intended for n <= ~26.
struct LongestCycleResult {
  int length = 0;
  std::vector<int> cycle;
};
LongestCycleResult longest_cycle(const SmallGraph& g, std::uint64_t forbidden);

/// One Hamiltonian cycle over the vertices NOT in `forbidden`, or nullopt.
std::optional<std::vector<int>> hamiltonian_cycle(const SmallGraph& g,
                                                  std::uint64_t forbidden);

/// One simple cycle visiting exactly `target_vertices` vertices, none
/// in `forbidden`, or nullopt when no such cycle exists.  Exhaustive.
std::optional<std::vector<int>> cycle_with_exact_vertices(
    const SmallGraph& g, std::uint64_t forbidden, int target_vertices);

}  // namespace starring
