file(REMOVE_RECURSE
  "CMakeFiles/bench_star_vs_pancake.dir/bench_star_vs_pancake.cpp.o"
  "CMakeFiles/bench_star_vs_pancake.dir/bench_star_vs_pancake.cpp.o.d"
  "bench_star_vs_pancake"
  "bench_star_vs_pancake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_vs_pancake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
