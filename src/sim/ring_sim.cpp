#include "sim/ring_sim.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"

namespace starring {

namespace {

/// Publish one finished workload run to the obs counters (one shot at
/// the end of each run_* so the hot event loops stay untouched).
void publish(const char* workload, const SimMetrics& m) {
  if (!obs::enabled()) return;
  obs::counter("sim.runs").add();
  obs::counter("sim.messages").add(static_cast<std::int64_t>(m.messages));
  obs::counter("sim.bytes_moved")
      .add(static_cast<std::int64_t>(m.bytes_moved));
  obs::counter(std::string("sim.") + workload + "_runs").add();
}

}  // namespace

RingNetworkSim::RingNetworkSim(std::vector<VertexId> ring, SimParams params)
    : ring_(std::move(ring)), params_(params) {
  assert(ring_.size() >= 3);
}

double RingNetworkSim::hop_time(std::size_t from_idx,
                                std::size_t to_idx) const {
  // Deterministic per-link jitter from a hash of the endpoint ids, so
  // runs are reproducible but links are not all identical.
  std::uint64_t h = ring_[from_idx] * 0x9E3779B97F4A7C15ULL ^
                    ring_[to_idx] * 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  const double jitter =
      params_.jitter_frac * static_cast<double>(h % 1000) / 1000.0;
  return params_.link_latency_us * (1.0 + jitter) + transfer_time();
}

SimMetrics RingNetworkSim::run_token_ring(int rounds) {
  obs::ScopedPhase phase("sim_token_ring");
  SimMetrics m;
  m.participants = ring_.size();
  const std::size_t p = ring_.size();
  // A single token: purely sequential, but run it through the event
  // queue so the engine is the same one the concurrent workloads use.
  std::priority_queue<Event, std::vector<Event>, std::greater<>> q;
  q.push({0.0, 0, 0});
  double end = 0.0;
  const auto total_hops = static_cast<std::uint64_t>(rounds) * p;
  while (!q.empty()) {
    const Event e = q.top();
    q.pop();
    end = e.time;
    if (m.messages == total_hops) break;
    const std::uint32_t next = (e.node + 1) % p;
    const double t =
        e.time + hop_time(e.node, next) + params_.node_overhead_us;
    ++m.messages;
    m.bytes_moved += params_.message_bytes;
    q.push({t, next, e.round});
  }
  m.completion_time_us = end;
  m.participants_per_us =
      end > 0.0 ? static_cast<double>(m.participants) / end : 0.0;
  publish("token_ring", m);
  return m;
}

SimMetrics RingNetworkSim::run_allreduce() {
  obs::ScopedPhase phase("sim_allreduce");
  SimMetrics m;
  const std::size_t p = ring_.size();
  m.participants = p;
  // Ring all-reduce: 2(p-1) steps; in each step every node sends one
  // segment to its successor.  Nodes proceed to step s+1 once their
  // step-s message has arrived; the event queue tracks the per-node
  // completion frontier.
  std::vector<double> ready(p, 0.0);  // time node i may start sending step s
  const auto steps = 2 * (p - 1);
  for (std::size_t s = 0; s < steps; ++s) {
    std::vector<double> next_ready(p, 0.0);
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t to = (i + 1) % p;
      const double arrive =
          ready[i] + hop_time(i, to) + params_.node_overhead_us;
      // The receiver continues once both its own step and the incoming
      // segment are done.
      next_ready[to] = std::max(arrive, ready[to]);
      ++m.messages;
      m.bytes_moved += params_.message_bytes;
    }
    ready = std::move(next_ready);
  }
  m.completion_time_us = *std::max_element(ready.begin(), ready.end());
  m.participants_per_us =
      m.completion_time_us > 0.0
          ? static_cast<double>(p) / m.completion_time_us
          : 0.0;
  publish("allreduce", m);
  return m;
}

SimMetrics RingNetworkSim::run_neighbor_exchange(int rounds) {
  obs::ScopedPhase phase("sim_neighbor_exchange");
  SimMetrics m;
  const std::size_t p = ring_.size();
  m.participants = p;
  std::vector<double> ready(p, 0.0);
  for (int r = 0; r < rounds; ++r) {
    std::vector<double> next_ready = ready;
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t right = (i + 1) % p;
      const std::size_t left = (i + p - 1) % p;
      const double t_right =
          ready[i] + hop_time(i, right) + params_.node_overhead_us;
      const double t_left =
          ready[i] + hop_time(i, left) + params_.node_overhead_us;
      next_ready[right] = std::max(next_ready[right], t_right);
      next_ready[left] = std::max(next_ready[left], t_left);
      m.messages += 2;
      m.bytes_moved += 2 * params_.message_bytes;
    }
    ready = std::move(next_ready);
  }
  m.completion_time_us = *std::max_element(ready.begin(), ready.end());
  m.participants_per_us =
      m.completion_time_us > 0.0
          ? static_cast<double>(p) / m.completion_time_us
          : 0.0;
  publish("neighbor_exchange", m);
  return m;
}

}  // namespace starring
