// Degradation study: how ring capacity degrades as processors fail.
//
//   $ ./degradation_study [n] [trials]
//
// Sweeps the fault count from 0 to n-3 under three adversary models
// (uniform random, same-partite worst case, clustered neighbours) and
// prints the achieved ring length for the paper's construction vs the
// theoretical ceiling, demonstrating worst-case optimality.
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"

int main(int argc, char** argv) {
  using namespace starring;
  const int n = argc > 1 ? std::atoi(argv[1]) : 7;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 5;
  const StarGraph g(n);

  std::cout << "ring degradation on S_" << n << " (n! = " << g.num_vertices()
            << "), " << trials << " trials per cell\n\n";
  std::cout << std::setw(7) << "faults" << std::setw(12) << "promise"
            << std::setw(14) << "random" << std::setw(16) << "same-parity"
            << std::setw(14) << "clustered" << std::setw(14) << "ceiling*"
            << "\n";

  for (int nf = 0; nf <= n - 3; ++nf) {
    std::uint64_t len_rand = 0;
    std::uint64_t len_par = 0;
    std::uint64_t len_clu = 0;
    std::uint64_t ceiling = 0;
    for (int t = 0; t < trials; ++t) {
      const auto seed = static_cast<std::uint64_t>(t * 100 + nf);
      const FaultSet fr = random_vertex_faults(g, nf, seed);
      const FaultSet fp =
          nf > 0 ? same_partite_vertex_faults(g, nf, 0, seed) : FaultSet{};
      const FaultSet fc =
          nf > 0 ? clustered_neighbor_faults(g, nf, seed) : FaultSet{};
      for (const auto* fs : {&fr, &fp, &fc}) {
        const auto res = embed_longest_ring(g, *fs);
        if (!res || !verify_healthy_ring(g, *fs, res->ring).valid) {
          std::cerr << "FAILURE at nf=" << nf << "\n";
          return 1;
        }
        const auto len = res->ring.size();
        if (fs == &fr) len_rand += len;
        if (fs == &fp) len_par += len;
        if (fs == &fc) len_clu += len;
      }
      ceiling += bipartite_upper_bound(g, fp);
    }
    const auto tr = static_cast<std::uint64_t>(trials);
    std::cout << std::setw(7) << nf << std::setw(12)
              << expected_ring_length(n, static_cast<std::size_t>(nf))
              << std::setw(14) << len_rand / tr << std::setw(16)
              << len_par / tr << std::setw(14) << len_clu / tr
              << std::setw(14) << ceiling / tr << "\n";
  }
  std::cout << "\n*ceiling = bipartite bound n!-2*max(even,odd) for the "
               "same-parity adversary;\n the same-parity column matching it "
               "shows worst-case optimality.\n";
  return 0;
}
