// Block chaining: Lemma 7 of the paper, generalized.
//
// Given an R_4 (a super-ring of S_4 blocks), thread a healthy path
// through every block — Hamiltonian for healthy blocks, 2 vertices
// short per fault for faulty blocks — and splice consecutive paths with
// super-edge crossings into one healthy ring.
//
// The entry of block k+1 is forced by the exit chosen in block k: an
// exit y (a healthy member whose position-0 symbol equals the symbol
// the next block fixes at the dif position) crosses to the member
// y.star_move(dif) of the next block.  Parity bookkeeping is implicit:
// every per-block vertex target is even, so each path uses an odd
// number of edges; every chain entry therefore has the parity of the
// closure vertex x0 = partner(y_last), and since x0 and y_last are
// themselves parity-opposite neighbours, the cyclic closure can never
// fail on parity alone (the bipartite obstruction the paper handles
// with Lemmas 5/6 and the odd-ring contradiction argument).
//
// The per-fault loss inside a block is a parameter: 2 reproduces the
// paper (Lemma 4: a healthy 22-vertex path exists through a block with
// one fault), 4 reproduces the weaker per-fault guarantee of the
// Tseng-Chang-Sheu baseline within the same framework.
#pragma once

#include <optional>

#include "core/ring_embedder.hpp"
#include "core/super_ring.hpp"

namespace starring {

/// Thread and splice `sr` into a healthy ring.  `per_fault_loss` must be
/// even (ring parity); it is the number of vertices dropped from a block
/// per vertex fault inside it.  `excise`, if given, is a substar pattern
/// whose members all lie in one block of `sr`: those vertices are
/// skipped outright (the Latifi–Bagherzadeh mechanism for an enclosing
/// substar smaller than a block).  Returns nullopt when the chain search
/// exhausts every closure candidate or the backtrack budget.
std::optional<EmbedResult> chain_block_ring(const StarGraph& g,
                                            const SuperRing& sr,
                                            const FaultSet& faults,
                                            const EmbedOptions& opts,
                                            int per_fault_loss = 2,
                                            const SubstarPattern* excise = nullptr);

/// Open-chain variant for the longest-path extension: thread a healthy
/// s-t path through the block chain `sp` (from build_block_path; the
/// first block holds s, the last holds t).  `short_block`, if in
/// [0, m), designates the block whose target is reduced by one vertex —
/// the parity correction needed when s and t lie in the same partite
/// set.  Returns the path (ring field holds the open vertex sequence
/// from s to t).
std::optional<EmbedResult> chain_block_path(const StarGraph& g,
                                            const SuperRing& sp,
                                            const FaultSet& faults,
                                            const EmbedOptions& opts,
                                            const Perm& s, const Perm& t,
                                            int short_block = -1,
                                            int per_fault_loss = 2);

}  // namespace starring
