// Failure-aware candidate ordering on top of the ShardMap.
//
// The proxy asks the router, not the map, where to send a request: the
// router starts from the map's nearest-first candidate list and
// reorders it by per-shard circuit-breaker state.  A shard that has
// failed `open_threshold` consecutive times has its breaker opened for
// a cooldown that grows with the failure streak
// (util/backoff.hpp::retry_backoff_ms); while open it sinks to the
// back of every candidate list instead of being removed — the list is
// never empty, so every request still reaches *some* terminal status
// even with the whole cluster limping.  When the cooldown elapses the
// next request through is the half-open probe: its success closes the
// breaker, its failure re-opens with a longer cooldown.
//
// Time is an explicit parameter (steady_clock::time_point) so unit
// tests drive the breaker state machine without sleeping.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "cluster/shard_map.hpp"

namespace starring::cluster {

struct BreakerOptions {
  /// Consecutive failures that open a shard's breaker.
  int open_threshold = 3;
  /// Backoff schedule for the open cooldown: round k after opening
  /// waits retry_backoff_ms(k, base_ms, cap_ms).
  int base_ms = 100;
  int cap_ms = 5000;
};

class ShardRouter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ShardRouter(ShardMap map, BreakerOptions opts = {});

  const ShardMap& map() const { return map_; }

  /// Every shard, nearest-first for `key`, with open-breaker shards
  /// moved to the back (stable within each group).  Never empty while
  /// the map has shards.
  std::vector<int> candidates(std::string_view key, Clock::time_point now);

  /// Is the shard currently worth trying (breaker closed, or open with
  /// an elapsed cooldown — the half-open probe)?
  bool allow(int shard_id, Clock::time_point now);

  void record_failure(int shard_id, Clock::time_point now);
  void record_success(int shard_id);

  int consecutive_failures(int shard_id);

 private:
  struct Breaker {
    int failures = 0;
    /// Set while open: earliest time a half-open probe may go out.
    Clock::time_point retry_at{};
    bool open = false;
  };

  bool allow_locked(const Breaker& b, Clock::time_point now) const;

  ShardMap map_;
  BreakerOptions opts_;
  std::mutex mu_;
  std::map<int, Breaker> breakers_;
};

}  // namespace starring::cluster
