// Quickstart: embed the longest healthy ring into a faulty star graph.
//
//   $ ./quickstart [n] [num_faults] [seed]
//
// Builds S_n, injects random vertex faults, runs the paper's
// construction, verifies the result independently, and prints a short
// summary plus the first few ring vertices.
#include <cstdlib>
#include <iostream>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"

int main(int argc, char** argv) {
  using namespace starring;
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  const int nf = argc > 2 ? std::atoi(argv[2]) : n - 3;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  if (n < 4 || n > 12) {
    std::cerr << "n must be in [4, 12]\n";
    return 1;
  }
  if (nf > n - 3) {
    std::cerr << "warning: " << nf << " faults exceed the paper's regime "
              << "(|Fv| <= n-3 = " << (n - 3) << "); trying anyway\n";
  }

  const StarGraph g(n);
  std::cout << "S_" << n << ": " << g.num_vertices() << " vertices, degree "
            << g.degree() << "\n";

  const FaultSet faults = random_vertex_faults(g, nf, seed);
  std::cout << "faulty processors:";
  for (const Perm& f : faults.vertex_faults()) std::cout << ' ' << f.to_string();
  std::cout << "\n";

  const auto res = embed_longest_ring(g, faults);
  if (!res) {
    std::cerr << "embedding failed\n";
    return 1;
  }

  const auto rep = verify_healthy_ring(g, faults, res->ring);
  if (!rep.valid) {
    std::cerr << "verification FAILED: " << rep.error << "\n";
    return 1;
  }

  std::cout << "embedded healthy ring of length " << rep.length << " = n! - "
            << (g.num_vertices() - rep.length) << "  (promise: n! - 2|Fv| = "
            << expected_ring_length(n, faults.num_vertex_faults()) << ")\n";
  std::cout << "blocks: " << res->stats.num_blocks
            << ", faulty blocks: " << res->stats.faulty_blocks
            << ", backtracks: " << res->stats.backtracks << "\n";

  std::cout << "ring prefix:";
  for (std::size_t i = 0; i < std::min<std::size_t>(10, res->ring.size()); ++i)
    std::cout << ' ' << g.vertex(res->ring[i]).to_string();
  std::cout << " ...\n";
  return 0;
}
