file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_sweep.dir/checkpoint_sweep.cpp.o"
  "CMakeFiles/checkpoint_sweep.dir/checkpoint_sweep.cpp.o.d"
  "checkpoint_sweep"
  "checkpoint_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
