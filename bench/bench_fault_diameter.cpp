// Experiment E16 — fault diameter of the star graph.
//
// The paper's related-work list includes the conditional fault diameter
// of star graphs (Rouskov, Latifi & Srimani [28]).  This harness
// measures the healthy-subgraph diameter under the fault loads the ring
// theorem tolerates: for |Fv| <= n-3 the healthy graph stays connected
// (kappa = n-1) and its diameter exceeds the fault-free
// floor(3(n-1)/2) only by a small additive constant — the property
// that keeps routing usable while the embedded ring does the collective
// work.
#include <cstdio>
#include <cstdlib>

#include "fault/generators.hpp"
#include "routing/routing.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("fault_diameter");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 6;
  rec.note_n(max_n);
  const int trials = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("E16: healthy-subgraph diameter under vertex faults\n");
  std::printf("%3s %4s %-12s %12s %14s %10s\n", "n", "|Fv|", "shape",
              "diam(S_n)", "worst healthy", "excess");

  bool ok = true;
  for (int n = 4; n <= max_n; ++n) {
    const StarGraph g(n);
    const int d0 = star_diameter(n);
    for (int nf = 0; nf <= n - 3; ++nf) {
      struct Shape {
        const char* name;
        bool clustered;
      } shapes[] = {{"random", false}, {"clustered", true}};
      for (const auto& shape : shapes) {
        if (nf == 0 && shape.clustered) continue;
        int worst = 0;
        for (int t = 0; t < trials; ++t) {
          const auto seed = static_cast<std::uint64_t>(t);
          const FaultSet f = shape.clustered
                                 ? clustered_neighbor_faults(g, nf, seed)
                                 : random_vertex_faults(g, nf, seed);
          const int d = healthy_diameter(g, f);
          if (d < 0) {
            ok = false;  // must stay connected inside the regime
            continue;
          }
          worst = std::max(worst, d);
        }
        std::printf("%3d %4d %-12s %12d %14d %10d\n", n, nf, shape.name, d0,
                    worst, worst - d0);
        ok &= worst - d0 <= 2;
      }
    }
  }
  std::printf("\n%s\n",
              ok ? "RESULT: healthy diameter within +2 of the fault-free "
                   "diameter on every instance; never disconnected"
                 : "RESULT: diameter blow-up or disconnection observed");
  return ok ? 0 : 1;
}
