file(REMOVE_RECURSE
  "CMakeFiles/test_block_oracle.dir/test_block_oracle.cpp.o"
  "CMakeFiles/test_block_oracle.dir/test_block_oracle.cpp.o.d"
  "test_block_oracle"
  "test_block_oracle.pdb"
  "test_block_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
