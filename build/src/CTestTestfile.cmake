# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("perm")
subdirs("util")
subdirs("graph")
subdirs("hypercube")
subdirs("pancake")
subdirs("stargraph")
subdirs("fault")
subdirs("routing")
subdirs("core")
subdirs("baselines")
subdirs("extensions")
subdirs("sim")
