#!/usr/bin/env bash
# CI entry point: the tier-1 verify line, then sanitizer builds of the
# test suite (ASan+UBSan with an end-to-end starringd/starring-cli
# service smoke, and TSan for the worker pool), then a Release-mode
# bench smoke diffed against the committed baseline artifact with
# scripts/bench_compare.py.
#
# Usage: scripts/ci.sh [--tier1-only | --san-only | --tsan-only |
#                       --bench-only | --service-only | --chaos-only |
#                       --load-only | --simdoff-only | --cluster-only]
# Env:   JOBS=<n> to cap build/test parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

run_tier1=1
run_san=1
run_tsan=1
run_bench=1
run_service=1
run_chaos=1
run_load=1
run_simdoff=1
run_cluster=1
case "${1:-}" in
  --tier1-only) run_san=0; run_tsan=0; run_bench=0; run_service=0; run_chaos=0; run_load=0; run_simdoff=0; run_cluster=0 ;;
  --san-only) run_tier1=0; run_tsan=0; run_bench=0; run_service=0; run_chaos=0; run_load=0; run_simdoff=0; run_cluster=0 ;;
  --tsan-only) run_tier1=0; run_san=0; run_bench=0; run_service=0; run_chaos=0; run_load=0; run_simdoff=0; run_cluster=0 ;;
  --bench-only) run_tier1=0; run_san=0; run_tsan=0; run_service=0; run_chaos=0; run_load=0; run_simdoff=0; run_cluster=0 ;;
  --service-only) run_tier1=0; run_san=0; run_tsan=0; run_bench=0; run_chaos=0; run_load=0; run_simdoff=0; run_cluster=0 ;;
  --chaos-only) run_tier1=0; run_san=0; run_tsan=0; run_bench=0; run_service=0; run_load=0; run_simdoff=0; run_cluster=0 ;;
  --load-only) run_tier1=0; run_san=0; run_tsan=0; run_bench=0; run_service=0; run_chaos=0; run_simdoff=0; run_cluster=0 ;;
  --simdoff-only) run_tier1=0; run_san=0; run_tsan=0; run_bench=0; run_service=0; run_chaos=0; run_load=0; run_cluster=0 ;;
  --cluster-only) run_tier1=0; run_san=0; run_tsan=0; run_bench=0; run_service=0; run_chaos=0; run_load=0; run_simdoff=0 ;;
  "") ;;
  *) echo "unknown flag: $1" >&2; exit 2 ;;
esac

# Drives ~100 mixed requests through a spawned daemon over stdio pipes
# (drive mode asserts every response, a nonzero cache-hit count, and a
# clean EOF-triggered drain), using whichever build tree is passed in.
# Collects the flight-recorder trace and the STATS exposition on the
# way and validates both with scripts/trace_validate.py.
service_smoke() {
  local build_dir="$1"
  local smoke_dir="$build_dir/service-smoke"
  mkdir -p "$smoke_dir"
  STARRING_BENCH_DIR="$smoke_dir" \
    "$build_dir/src/service/starring-cli" drive \
    --count 100 --seed 7 --nmin 5 --nmax 7 --verify --expect-hits \
    --trace-out "$smoke_dir/trace.json" \
    --stats-out "$smoke_dir/stats.prom" -- \
    "$build_dir/src/service/starringd" --verify-on-hit --bench-artifact service
  python3 - "$smoke_dir/BENCH_service.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
assert c["svc.requests"] == 100, c
assert c["svc.cache_hits"] > 0, c
assert c.get("svc.verify_failures", 0) == 0, c
assert c.get("svc.embed_failures", 0) == 0, c
print(f"service smoke: {int(c['svc.cache_hits'])} hits / "
      f"{int(c['svc.requests'])} requests, artifact ok")
EOF
  python3 scripts/trace_validate.py \
    --trace "$smoke_dir/trace.json" --expect-hit-miss \
    --require-span svc.request --require-span svc.queue_wait \
    --require-span svc.canonicalize --require-span svc.cache_probe \
    --require-span svc.embed --require-span svc.relabel \
    --require-span svc.verify --require-span embed \
    --require-span super_ring --require-span verify \
    --prom "$smoke_dir/stats.prom" \
    --require-histogram starring_svc_latency_seconds
}

# TCP variant: a live daemon serving loopback, dump-on-SIGUSR1 for the
# flight recorder, STATS scraped over the wire by the driving client.
service_smoke_tcp() {
  local build_dir="$1"
  local smoke_dir="$build_dir/service-smoke-tcp"
  local port=47113
  mkdir -p "$smoke_dir"
  "$build_dir/src/service/starringd" --listen "$port" \
    --trace-out "$smoke_dir/trace.json" &
  local daemon_pid=$!
  # shellcheck disable=SC2064
  trap "kill -9 $daemon_pid 2>/dev/null || true" RETURN
  for _ in $(seq 50); do
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
      echo "service smoke (tcp): daemon died during startup" >&2; return 1
    fi
    (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null && break
    sleep 0.1
  done
  "$build_dir/src/service/starring-cli" drive \
    --count 60 --seed 11 --nmin 5 --nmax 6 --verify --expect-hits \
    --connect "$port" --stats-out "$smoke_dir/stats.prom"
  # Live flight-recorder dump: SIGUSR1 is picked up by the daemon's
  # watcher thread within ~200ms.
  kill -USR1 "$daemon_pid"
  for _ in $(seq 50); do
    [[ -s "$smoke_dir/trace.json" ]] && break
    sleep 0.1
  done
  [[ -s "$smoke_dir/trace.json" ]] || {
    echo "service smoke (tcp): no trace after SIGUSR1" >&2; return 1; }
  python3 scripts/trace_validate.py \
    --trace "$smoke_dir/trace.json" --expect-hit-miss \
    --require-span svc.request --require-span svc.embed \
    --prom "$smoke_dir/stats.prom" \
    --require-histogram starring_svc_latency_seconds
  kill -TERM "$daemon_pid"
  wait "$daemon_pid"
  echo "service smoke (tcp): SIGUSR1 dump + STATS scrape ok"
}

# Open-loop multi-tenant soak: starring-load drives a quota-enabled
# daemon with a 10:1 zipf skew (hot vs cold) plus a low-rate one-pass
# scan tenant.  starring-load itself holds the hard QoS gates — no
# tenant's p99 beyond 3x the other's, aggregate cache hit rate above
# the floor — and the scraped STATS must expose the folded per-tenant
# histograms.  The whole run sits under a wall-clock timeout: an
# open-loop generator that cannot finish its window is itself a
# regression.  The resulting BENCH_load.json is then diffed against
# the committed artifact with the fairness ratio gated (ratio-scale
# counter, hence --gate-min-delta instead of the 1e6 phase floor).
load_soak() {
  local build_dir="$1"
  local soak_dir="$build_dir/load-soak"
  local port=47161
  mkdir -p "$soak_dir"
  "$build_dir/src/service/starringd" --listen "$port" \
    --tenant-rate 500 --tenant-burst 250 &
  local daemon_pid=$!
  # shellcheck disable=SC2064
  trap "kill -9 $daemon_pid 2>/dev/null || true" RETURN
  for _ in $(seq 50); do
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
      echo "load soak: daemon died during startup" >&2; return 1
    fi
    (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null && break
    sleep 0.1
  done
  STARRING_BENCH_DIR="$soak_dir" timeout 120 \
    "$build_dir/src/loadgen/starring-load" \
    --connect "$port" --duration-ms 3000 --seed 7 \
    --tenant 'hot:rate=200:zipf=1.1:classes=24:nmin=5:nmax=6' \
    --tenant 'cold:rate=20:zipf=1.1:classes=24:nmin=5:nmax=6' \
    --tenant 'sweep:rate=5:pattern=scan:nmin=5:nmax=5' \
    --assert-p99-ratio 3 --min-hit-rate 0.55 \
    --stats-out "$soak_dir/stats.prom" --bench-artifact load
  python3 scripts/trace_validate.py \
    --prom "$soak_dir/stats.prom" \
    --require-histogram starring_svc_latency_seconds \
    --require-histogram starring_svc_tenant_hot_latency_seconds \
    --require-histogram starring_svc_tenant_cold_latency_seconds
  python3 scripts/bench_compare.py \
    bench/artifacts/BENCH_load.json "$soak_dir/BENCH_load.json" \
    --regression-pct 50 --gate load.p99_ratio_x100 --gate-min-delta 25
  kill -TERM "$daemon_pid"
  wait "$daemon_pid"
  echo "load soak: fairness + hit-rate gates ok"
}

# Cold-start smoke: a daemon handed a warm snapshot must start at
# least 5x faster than recomputing the same workload.  starring-cli
# warm prints warm_compute_ms (prewarm + embeds, serialization
# excluded); the daemon prints snapshot_load_ms to stderr; both are
# parsed out and the ratio asserted.  The drive itself asserts every
# response verifies and that the snapshot-seeded cache actually gets
# hit.  The workload is small on purpose: a handful of n=9 instances
# is the regime where recompute cost dominates and a cold daemon
# visibly lags.
cold_start_smoke() {
  local build_dir="$1"
  local dir="$build_dir/cold-start-smoke"
  mkdir -p "$dir"
  "$build_dir/src/service/starring-cli" warm \
    --out "$dir/oracle.snap" --count 8 --nmin 9 --nmax 9 --seed 3 \
    | tee "$dir/warm.log"
  "$build_dir/src/service/starring-cli" drive \
    --count 8 --nmin 9 --nmax 9 --seed 3 --verify --expect-hits -- \
    "$build_dir/src/service/starringd" --oracle-snapshot "$dir/oracle.snap" \
    2>&1 | tee "$dir/drive.log"
  python3 - "$dir/warm.log" "$dir/drive.log" <<'EOF'
import re, sys
warm = re.search(r"warm_compute_ms ([0-9.]+)", open(sys.argv[1]).read())
load = re.search(r"snapshot_load_ms ([0-9.]+)", open(sys.argv[2]).read())
assert warm, "starring-cli warm printed no warm_compute_ms"
assert load, "starringd printed no snapshot_load_ms (snapshot rejected?)"
w, l = float(warm.group(1)), float(load.group(1))
print(f"cold start: recompute {w:.1f} ms vs snapshot load {l:.1f} ms "
      f"= {w / l:.1f}x")
assert w / l >= 5.0, \
    f"snapshot cold-start speedup {w / l:.2f}x is below the 5x floor"
EOF
}

# Sharded-cluster smoke, two phases driven by the same zipf workload:
#
#   A. one starringd with a deliberately small cache — the capacity-
#      starved baseline hit rate.
#   B. three such shards behind starring-proxy, with one shard
#      SIGKILLed mid-run.
#
# starring-load's own exit code is the zero-failed-requests gate (an
# unanswered request or a `status error` is rc 1), the whole of each
# phase sits under a hard `timeout`, and the final assertions are:
# every request terminal despite the kill, at least one proxy failover,
# the survivors absorbed traffic, and the aggregate cluster hit rate
# beats phase A — sharding 3 small caches behind consistent hashing
# must outperform one small cache on the same keys.  The resulting
# BENCH_cluster.json is then diffed against the committed artifact
# with the hit rate gated.
cluster_smoke() {
  local build_dir="$1"
  local dir="$build_dir/cluster-smoke"
  mkdir -p "$dir"
  local ports=(47181 47182 47183)
  local proxy_port=47185
  # Gentle skew on purpose: at zipf=0.6 the working set of 96 classes
  # dwarfs one shard's 24-entry cache but fits the cluster's aggregate,
  # so the phase A vs B hit-rate gap is structural, not jitter.
  local workload=(--duration-ms 4000 --seed 7
    --tenant 'hot:rate=150:zipf=0.6:classes=96:nmin=5:nmax=6'
    --tenant 'warm:rate=60:zipf=0.6:classes=96:nmin=5:nmax=6')
  # Global on purpose: the EXIT trap must still see the array after a
  # failed gate unwinds the function's locals (set -e exits skip the
  # RETURN trap), otherwise orphaned daemons hold the fixed ports and
  # poison the next run.
  CLUSTER_SMOKE_PIDS=()
  trap 'kill -9 "${CLUSTER_SMOKE_PIDS[@]}" 2>/dev/null || true' RETURN EXIT
  # And sweep listeners a previous aborted run may have leaked anyway.
  pkill -9 -f "starringd --listen 4718" 2>/dev/null || true
  pkill -9 -f "starring-proxy .*--listen $proxy_port" 2>/dev/null || true

  wait_port() {
    local port="$1" pid="$2"
    for _ in $(seq 100); do
      if ! kill -0 "$pid" 2>/dev/null; then
        echo "cluster smoke: process on port $port died during startup" >&2
        return 1
      fi
      (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null && return 0
      sleep 0.1
    done
    echo "cluster smoke: port $port never came up" >&2
    return 1
  }

  echo "-- phase A: single capacity-starved shard"
  "$build_dir/src/service/starringd" --listen "${ports[0]}" \
    --cache-capacity 24 > "$dir/single.log" 2>&1 &
  local single_pid=$!
  CLUSTER_SMOKE_PIDS+=("$single_pid")
  wait_port "${ports[0]}" "$single_pid"
  STARRING_BENCH_DIR="$dir" timeout 120 \
    "$build_dir/src/loadgen/starring-load" \
    --connect "${ports[0]}" "${workload[@]}" \
    --bench-artifact cluster_single
  kill -TERM "$single_pid" && wait "$single_pid" || true

  echo "-- phase B: 3 shards + starring-proxy, owner SIGKILL mid-run"
  local map="$dir/shards.map"
  {
    echo "starring-shard-map v1"
    echo "epoch 1"
    echo "replication 2"
    echo "shards 3"
    for i in 0 1 2; do
      echo "shard $i 127.0.0.1:${ports[$i]}"
    done
    echo "end"
  } > "$map"
  local shard_pids=()
  for i in 0 1 2; do
    STARRING_TRACE_BUFFER=16384 \
    "$build_dir/src/service/starringd" --listen "${ports[$i]}" \
      --cache-capacity 24 --shard-id "$i" --shard-map "$map" --trace \
      > "$dir/shard$i.log" 2>&1 &
    shard_pids+=($!)
    CLUSTER_SMOKE_PIDS+=("${shard_pids[$i]}")
  done
  for i in 0 1 2; do
    wait_port "${ports[$i]}" "${shard_pids[$i]}"
  done
  # --trace-out arms span recording in the proxy and, at clean exit,
  # pulls every live shard's spans over TRACE into one merged Perfetto
  # file; --slow-ms arms the slow-request flight recorder (dumped to
  # the proxy log at exit).
  STARRING_TRACE_BUFFER=16384 \
  "$build_dir/src/cluster/starring-proxy" --shard-map "$map" \
    --listen "$proxy_port" --seed-threshold 2 --health-interval-ms 250 \
    --trace-out "$dir/cluster_trace.json" --slow-ms 5 --slow-keep 8 \
    > "$dir/proxy.log" 2>&1 &
  local proxy_pid=$!
  CLUSTER_SMOKE_PIDS+=("$proxy_pid")
  wait_port "$proxy_port" "$proxy_pid"
  # The kill lands while the workload is in full swing; replication +
  # failover must keep every in-flight and subsequent request terminal.
  ( sleep 2; kill -9 "${shard_pids[2]}" 2>/dev/null ) &
  local killer=$!
  STARRING_BENCH_DIR="$dir" timeout 120 \
    "$build_dir/src/loadgen/starring-load" \
    --connect "$proxy_port" "${workload[@]}" --trace \
    --stats-out "$dir/proxy.prom" --bench-artifact cluster
  wait "$killer"

  echo "-- phase B2: traced drive with an induced live-shard bounce"
  # Arm an alternating response-write failure on shard 0: half the
  # requests that land there look like a dead upstream to the proxy and
  # fail over to the other live shard — so some client traces cross the
  # proxy and BOTH surviving shard processes (the SIGKILLed shard's
  # spans died with it), which is what the stitching gate below
  # requires.  Alternating (not every) keeps shard 0's failure streak
  # below the breaker threshold.
  fail_cmd() {
    python3 - "$1" "$2" <<'EOF'
import socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10) as s:
    s.sendall(("FAIL " + sys.argv[2] + "\n").encode())
    reply = s.recv(256)
    assert reply.startswith(b"FAIL ok"), f"FAIL command refused: {reply!r}"
EOF
  }
  fail_cmd "${ports[0]}" "io.write_response=error@every:2"
  timeout 120 "$build_dir/src/service/starring-cli" drive \
    --connect "$proxy_port" --count 40 --seed 11 --trace --retry 3 \
    | tee "$dir/traced_drive.log"
  grep -q "hops: .* traced requests" "$dir/traced_drive.log" || {
    echo "cluster smoke: traced drive printed no hop summary" >&2
    exit 1
  }
  fail_cmd "${ports[0]}" "clear"
  python3 - "$dir" "${ports[0]}" "${ports[1]}" <<'EOF'
import json, socket, sys
dir_, survivors = sys.argv[1], sys.argv[2:]

def scrape(port):
    with socket.create_connection(("127.0.0.1", int(port)), timeout=10) as s:
        s.sendall(b"STATS\n")
        buf = b""
        while b"\nend\n" not in buf:
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return buf.decode()

def scalar(text, name):
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return None

# Survivors absorbed the dead shard's keys: both served real traffic.
for port in survivors:
    text = scrape(port)
    served = scalar(text, "starring_svc_requests")
    assert served and served > 0, f"surviving shard :{port} served nothing"
    print(f"cluster smoke: survivor :{port} served {int(served)} requests")

# The proxy actually exercised the failover path when the shard died.
proxy = open(f"{dir_}/proxy.prom").read()
failover = scalar(proxy, "starring_cluster_failover")
assert failover and failover >= 1, f"no failover recorded: {failover}"
print(f"cluster smoke: {int(failover)} failovers")

# Aggregate cluster hit rate must beat the capacity-starved single
# shard on the identical workload.
single = json.load(open(f"{dir_}/BENCH_cluster_single.json"))["counters"]
cluster = json.load(open(f"{dir_}/BENCH_cluster.json"))["counters"]
s, c = single["load.hit_rate_x1000"], cluster["load.hit_rate_x1000"]
assert s >= 0 and c >= 0, (s, c)
print(f"cluster smoke: hit rate single {s/1000:.3f} vs cluster {c/1000:.3f}")
assert c > s, f"cluster hit rate {c} did not beat single-shard {s}"
EOF
  python3 scripts/bench_compare.py \
    bench/artifacts/BENCH_cluster.json "$dir/BENCH_cluster.json" \
    --regression-pct 50 --gate load.hit_rate_x1000 --gate-min-delta 100
  # Stop the proxy BEFORE the shards: its exit path pulls each live
  # shard's spans over TRACE and writes the merged cluster trace.  The
  # SIGKILLed shard's spans are gone — the stitching checks only need
  # the proxy plus the two survivors.
  kill -TERM "$proxy_pid" 2>/dev/null || true
  wait "$proxy_pid" 2>/dev/null || true
  python3 scripts/trace_validate.py --trace "$dir/cluster_trace.json" \
    --cluster --expect-failover \
    --require-span proxy.request --require-span proxy.canonicalize \
    --require-span proxy.route --require-span proxy.forward \
    --require-span svc.request
  grep -q "slow requests:" "$dir/proxy.log" || {
    echo "cluster smoke: no slow-request recorder dump in proxy.log" >&2
    exit 1
  }
  kill -TERM "${shard_pids[0]}" "${shard_pids[1]}" 2>/dev/null || true
  echo "cluster smoke: failover + hit-rate + trace-stitching gates ok"
}

# Membership-churn drill: the dynamic-membership counterpart of
# cluster_smoke.  No shard-map file anywhere — shard 0 bootstraps a
# single-member cluster and everyone else gossips their way in:
#
#   t=0    shard 0 --bootstrap, shard 1 --join, proxy --join
#   t≈0    9s open-loop zipf load through the proxy starts
#   t+2s   shard 2 live-joins mid-load (expects seed handoff to warm it)
#   t+4s   shard 0 leaves gracefully (LEAVE: zero failover events)
#   t+5s   shard 1 is SIGKILLed (suspicion must bury it within ~5s)
#
# Gates: starring-load exits 0 (every request terminal through all
# three transitions), the proxy's map epoch advanced, the SIGKILLed
# shard is marked dead in the proxy's MEMBERS view, the graceful
# departure caused no failovers, and the late joiner both accepted
# seed records and served real traffic.
membership_churn() {
  local build_dir="$1"
  local dir="$build_dir/membership-churn"
  mkdir -p "$dir"
  local ports=(47191 47192 47193)
  local proxy_port=47195
  local seed_addr="127.0.0.1:${ports[0]}"
  local gossip=(--gossip-interval-ms 100 --suspicion-timeout-ms 1000)
  CHURN_PIDS=()
  trap 'kill -9 "${CHURN_PIDS[@]}" 2>/dev/null || true' RETURN EXIT
  pkill -9 -f "starringd --listen 4719" 2>/dev/null || true
  pkill -9 -f "starring-proxy .*--listen $proxy_port" 2>/dev/null || true

  wait_port() {
    local port="$1" pid="$2"
    for _ in $(seq 100); do
      if ! kill -0 "$pid" 2>/dev/null; then
        echo "membership churn: process on port $port died during startup" >&2
        return 1
      fi
      (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null && return 0
      sleep 0.1
    done
    echo "membership churn: port $port never came up" >&2
    return 1
  }

  # One helper for every wire-side query the drill needs: HEALTH epoch,
  # MEMBERS state of one address, STATS scalar.
  query() {
    python3 - "$@" <<'EOF'
import socket, sys
mode, port = sys.argv[1], int(sys.argv[2])
def ask(cmd):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
        s.sendall((cmd + "\n").encode())
        buf = b""
        while b"\nend\n" not in buf and b"end\n" != buf[:4]:
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return buf.decode()
if mode == "epoch":
    for line in ask("HEALTH").splitlines():
        if line.startswith("epoch "):
            print(line.split()[1]); break
elif mode == "state":
    addr, state = sys.argv[3], ""
    for line in ask("MEMBERS").splitlines():
        tok = line.split()
        if len(tok) == 5 and tok[0] == "member" and tok[1] == addr:
            state = tok[4]
    print(state or "absent")
elif mode == "stat":
    name, val = sys.argv[3], "0"
    for line in ask("STATS").splitlines():
        if line.startswith(name + " "):
            val = line.split()[1]
    print(val)
EOF
  }

  echo "-- membership churn: bootstrap + join (no shard-map file)"
  "$build_dir/src/service/starringd" --listen "${ports[0]}" --shard-id 0 \
    --bootstrap --cache-capacity 24 "${gossip[@]}" \
    > "$dir/shard0.log" 2>&1 &
  local shard0_pid=$!
  CHURN_PIDS+=("$shard0_pid")
  wait_port "${ports[0]}" "$shard0_pid"
  "$build_dir/src/service/starringd" --listen "${ports[1]}" --shard-id 1 \
    --join "$seed_addr" --cache-capacity 24 "${gossip[@]}" \
    > "$dir/shard1.log" 2>&1 &
  local shard1_pid=$!
  CHURN_PIDS+=("$shard1_pid")
  wait_port "${ports[1]}" "$shard1_pid"
  "$build_dir/src/cluster/starring-proxy" --join "$seed_addr" \
    --listen "$proxy_port" --seed-threshold 2 --health-interval-ms 250 \
    "${gossip[@]}" > "$dir/proxy.log" 2>&1 &
  local proxy_pid=$!
  CHURN_PIDS+=("$proxy_pid")
  wait_port "$proxy_port" "$proxy_pid"
  # Both shards visible to the proxy before load starts.
  for _ in $(seq 50); do
    [[ "$(query state "$proxy_port" "127.0.0.1:${ports[1]}")" == alive ]] \
      && break
    sleep 0.1
  done
  local epoch0
  epoch0="$(query epoch "$proxy_port")"
  [[ -n "$epoch0" ]] || { echo "membership churn: no proxy epoch" >&2; exit 1; }

  timeout 120 "$build_dir/src/loadgen/starring-load" \
    --connect "$proxy_port" --duration-ms 9000 --seed 7 \
    --tenant 'hot:rate=100:zipf=0.9:classes=48:nmin=5:nmax=6' \
    --tenant 'warm:rate=40:zipf=0.9:classes=48:nmin=5:nmax=6' \
    --stats-out "$dir/load.prom" > "$dir/load.log" 2>&1 &
  local load_pid=$!

  echo "-- membership churn: live join mid-load"
  sleep 2
  "$build_dir/src/service/starringd" --listen "${ports[2]}" --shard-id 2 \
    --join "$seed_addr" --cache-capacity 24 "${gossip[@]}" \
    > "$dir/shard2.log" 2>&1 &
  local shard2_pid=$!
  CHURN_PIDS+=("$shard2_pid")
  wait_port "${ports[2]}" "$shard2_pid"
  sleep 1.5  # gossip convergence + seed handoff to the new replica

  echo "-- membership churn: graceful LEAVE under load"
  local f0 f1
  f0="$(query stat "$proxy_port" starring_cluster_failover)"
  python3 - "${ports[0]}" <<'EOF'
import socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10) as s:
    s.sendall(b"LEAVE\n")
    reply = s.recv(256)
    assert reply.startswith(b"LEAVE ok"), f"LEAVE refused: {reply!r}"
EOF
  wait "$shard0_pid" 2>/dev/null || true
  sleep 1
  f1="$(query stat "$proxy_port" starring_cluster_failover)"
  if [[ "${f1%.*}" != "${f0%.*}" ]]; then
    echo "membership churn: graceful LEAVE caused failovers ($f0 -> $f1)" >&2
    exit 1
  fi
  [[ "$(query state "$proxy_port" "$seed_addr")" == left ]] || {
    echo "membership churn: departed shard not marked left" >&2; exit 1; }

  echo "-- membership churn: SIGKILL + suspicion"
  kill -9 "$shard1_pid" 2>/dev/null || true
  local buried=0
  for _ in $(seq 50); do  # probe fail + 1s suspicion window, 5s budget
    if [[ "$(query state "$proxy_port" "127.0.0.1:${ports[1]}")" == dead ]]
    then buried=1; break; fi
    sleep 0.1
  done
  [[ "$buried" == 1 ]] || {
    echo "membership churn: SIGKILLed shard never declared dead" >&2; exit 1; }

  wait "$load_pid"  # rc != 0 (a failed request) fails the phase via set -e
  local epoch1
  epoch1="$(query epoch "$proxy_port")"
  if (( epoch1 <= epoch0 )); then
    echo "membership churn: map epoch never advanced ($epoch0 -> $epoch1)" >&2
    exit 1
  fi
  local seeds served
  seeds="$(query stat "${ports[2]}" starring_svc_seeds_accepted)"
  served="$(query stat "${ports[2]}" starring_svc_requests)"
  if [[ "${seeds%.*}" -lt 1 || "${served%.*}" -lt 1 ]]; then
    echo "membership churn: late joiner not warmed (seeds=$seeds served=$served)" >&2
    exit 1
  fi
  kill -TERM "$proxy_pid" 2>/dev/null || true
  wait "$proxy_pid" 2>/dev/null || true
  kill -TERM "$shard2_pid" 2>/dev/null || true
  echo "membership churn: join/leave/kill drill ok" \
    "(epoch $epoch0 -> $epoch1, joiner seeds=${seeds%.*} served=${served%.*})"
}

if [[ "$run_tier1" == 1 ]]; then
  echo "== tier-1: RelWithDebInfo build + full ctest =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$run_san" == 1 ]]; then
  echo "== sanitizers: ASan+UBSan Debug build + full ctest =="
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && \
    ASAN_OPTIONS=detect_leaks=0 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure -j "$JOBS")
  echo "== service smoke under ASan+UBSan: starringd drain + cache hits =="
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    service_smoke build-asan
  echo "== service smoke under ASan+UBSan: TCP + SIGUSR1 dump + STATS =="
  ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
    service_smoke_tcp build-asan
fi

if [[ "$run_service" == 1 && "$run_san" == 0 ]]; then
  echo "== service smoke: starringd drain + cache hits (tier-1 build) =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target starringd starring-cli
  service_smoke build
  echo "== service smoke: TCP + SIGUSR1 dump + STATS (tier-1 build) =="
  service_smoke_tcp build
fi

if [[ "$run_chaos" == 1 ]]; then
  echo "== chaos smoke: failpoint storm + slow-client eviction + bounded drain =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target starringd
  # The whole smoke runs under a hard wall-clock bound: the invariant
  # under chaos is "nothing hangs", and the timeout IS that gate.
  timeout 300 python3 scripts/chaos_smoke.py build/src/service/starringd
fi

if [[ "$run_load" == 1 ]]; then
  echo "== load soak: open-loop multi-tenant QoS (p99 fairness + hit-rate gates) =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target starringd starring-load
  load_soak build
fi

if [[ "$run_cluster" == 1 ]]; then
  echo "== cluster smoke: 3 shards + proxy, SIGKILL mid-run, hit-rate gate =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target starringd starring-proxy \
    starring-load starring-cli
  cluster_smoke build
  echo "== membership churn: live join, graceful leave, SIGKILL suspicion =="
  membership_churn build
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== sanitizers: TSan build + full ctest (worker pool, shared oracle cache) =="
  TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer -O1 -g"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j "$JOBS"
  (cd build-tsan && \
    TSAN_OPTIONS=halt_on_error=1 \
    ctest --output-on-failure -j "$JOBS")
fi

if [[ "$run_bench" == 1 ]]; then
  echo "== bench smoke: Release BM_EmbedMaxFaults vs committed baseline =="
  # Failpoints are compiled out of the bench build: the hot path must
  # show no regression with the reliability layer reduced to nothing.
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release \
    -DSTARRING_FAILPOINTS=OFF
  cmake --build build-bench -j "$JOBS" --target bench_runtime
  SMOKE_DIR="build-bench/bench-smoke"
  mkdir -p "$SMOKE_DIR"
  STARRING_BENCH_DIR="$SMOKE_DIR" ./build-bench/bench/bench_runtime \
    --benchmark_filter='BM_EmbedMaxFaults/(8|9)'
  # The committed artifact was measured on a different machine, so only
  # order-of-magnitude per-call wall-clock growth is flagged; the
  # counters in the diff are the signal reviewers read.
  python3 scripts/bench_compare.py \
    bench/artifacts/BENCH_runtime.json "$SMOKE_DIR/BENCH_runtime.json" \
    --normalize-by embed.calls --regression-pct 100
  echo "== bench smoke: tracing overhead on BM_EmbedMaxFaults (n=9) =="
  cmake --build build-bench -j "$JOBS" --target bench_trace
  STARRING_BENCH_DIR="$SMOKE_DIR" ./build-bench/bench/bench_trace
  # Disabled-tracing cost is gated hard: the fastest-iteration CPU time
  # of the span-sites-disabled pipeline must stay within 2% (plus the
  # 1ms granularity floor) of the committed baseline.  Only the min
  # statistic is gated — the phase sums and wall_ms jitter far beyond
  # 2% on a shared box and stay informational.
  python3 scripts/bench_compare.py \
    bench/artifacts/BENCH_trace.json "$SMOKE_DIR/BENCH_trace.json" \
    --regression-pct 2 --gate phase.trace_off_embed_min_ns
  python3 - "$SMOKE_DIR/BENCH_trace.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
pct = c.get("trace.overhead_pct")
assert pct is not None, "bench_trace artifact lacks trace.overhead_pct"
print(f"tracing enabled-vs-disabled overhead: {pct:+.2f}%")
EOF
  echo "== bench smoke: SIMD permutation kernels vs committed baseline =="
  cmake --build build-bench -j "$JOBS" --target bench_perm
  STARRING_BENCH_DIR="$SMOKE_DIR" ./build-bench/bench/bench_perm \
    --benchmark_filter='BM_Batch.*/9/'
  # Gate the active-tier mins only: a dispatch regression to scalar is
  # a +230%..+1300% jump on these, far above run-to-run jitter, while
  # the scalar series and the speedup ratios move with the hardware and
  # stay informational.  --gate-min-delta drops the 1e6 counter floor
  # to 10us so the sub-millisecond mins are actually guarded.
  python3 scripts/bench_compare.py \
    bench/artifacts/BENCH_perm.json "$SMOKE_DIR/BENCH_perm.json" \
    --regression-pct 100 --gate-min-delta 10000 \
    --gate phase.perm.rank_simd_min_ns,phase.perm.unrank_simd_min_ns,phase.perm.parity_simd_min_ns,phase.perm.relabel_simd_min_ns,phase.perm.inverse_simd_min_ns
  echo "== bench smoke: snapshot cold start vs recompute (n=9) =="
  cmake --build build-bench -j "$JOBS" --target starringd starring-cli
  cold_start_smoke build-bench
fi

if [[ "$run_simdoff" == 1 ]]; then
  echo "== build matrix: -DSTARRING_SIMD=OFF (scalar-only kernels) =="
  cmake -B build-simdoff -S . -DSTARRING_SIMD=OFF
  cmake --build build-simdoff -j "$JOBS" \
    --target test_simd test_canonical test_oracle_store
  # Run the binaries directly: ctest's discovered lists cover targets
  # this leg deliberately did not build.
  ./build-simdoff/tests/test_simd
  ./build-simdoff/tests/test_canonical
  ./build-simdoff/tests/test_oracle_store
  echo "== env override: STARRING_SIMD=off on the SIMD-enabled build =="
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target test_simd
  STARRING_SIMD=off ./build/tests/test_simd
fi

echo "== ci.sh: all requested stages passed =="
