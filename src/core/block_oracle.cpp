#include "core/block_oracle.hpp"

#include <atomic>
#include <cassert>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "perm/permutation.hpp"
#include "stargraph/substar.hpp"

namespace starring {

namespace {

/// Process-wide memo, striped so concurrent embeds contend on at most
/// one shard per query.  Lookups take a shared lock (read-mostly: after
/// warmup virtually every query is a hit), inserts upgrade to exclusive
/// on the one shard.
struct OracleCache {
  static constexpr std::size_t kShards = 16;

  struct Shard {
    std::shared_mutex mu;
    std::unordered_map<std::uint64_t, std::optional<std::vector<int>>> map;
  };
  Shard shards[kShards];
  std::atomic<bool> prewarmed{false};

  static OracleCache& instance() {
    static OracleCache cache;
    return cache;
  }

  Shard& shard_for(std::uint64_t key) {
    // splitmix-style spread so consecutive keys hit different stripes.
    std::uint64_t x = key * 0x9E3779B97F4A7C15ULL;
    return shards[(x >> 60) & (kShards - 1)];
  }

  bool lookup(std::uint64_t key, std::optional<std::vector<int>>* out) {
    Shard& s = shard_for(key);
    const std::shared_lock<std::shared_mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    *out = it->second;
    return true;
  }

  void insert(std::uint64_t key, const std::optional<std::vector<int>>& val) {
    Shard& s = shard_for(key);
    const std::unique_lock<std::shared_mutex> lock(s.mu);
    s.map.emplace(key, val);  // racing computers produce identical values
  }

  void clear() {
    for (Shard& s : shards) {
      const std::unique_lock<std::shared_mutex> lock(s.mu);
      s.map.clear();
    }
    prewarmed.store(false, std::memory_order_release);
  }
};

std::uint64_t cache_key(int from, int to, std::uint32_t forbidden,
                        int target_vertices) {
  // Packs (from, to, forbidden, target): 5+5+24+5 bits.
  return static_cast<std::uint64_t>(from) |
         (static_cast<std::uint64_t>(to) << 5) |
         (static_cast<std::uint64_t>(forbidden) << 10) |
         (static_cast<std::uint64_t>(target_vertices) << 34);
}

}  // namespace

BlockOracle::BlockOracle() : graph_(kBlockSize) {
  // Materialize the abstract block graph from the one canonical S_4:
  // the whole pattern of n = 4 (free positions 0..3, local index =
  // Lehmer rank).  Every embedded S_4 block of every S_n has this exact
  // local structure.
  const SubstarPattern s4 = SubstarPattern::whole(4);
  const SmallGraph g = s4.block_graph();
  for (int u = 0; u < kBlockSize; ++u)
    for (int v = u + 1; v < kBlockSize; ++v)
      if (g.has_edge(u, v)) graph_.add_edge(u, v);
  parity_.reserve(kBlockSize);
  for (int k = 0; k < kBlockSize; ++k)
    parity_.push_back(Perm::unrank(static_cast<VertexId>(k), 4).parity());
}

std::optional<std::vector<int>> BlockOracle::find_path(
    int from, int to, std::uint32_t forbidden, int target_vertices,
    std::span<const std::pair<int, int>> removed_edges) {
  assert(from >= 0 && from < kBlockSize && to >= 0 && to < kBlockSize);
  if (!removed_edges.empty()) {
    // Rare (edge-fault experiments only): search an ad-hoc copy.
    SmallGraph g = graph_;
    for (const auto& [u, v] : removed_edges) g.remove_edge(u, v);
    return path_with_exact_vertices(g, from, to, forbidden, target_vertices);
  }
  const std::uint64_t key = cache_key(from, to, forbidden, target_vertices);
  // Function-local statics: one registry lookup per process, then a
  // relaxed atomic add per query (and only while metrics are enabled).
  static obs::Counter& hit_counter = obs::counter("oracle.cache_hits");
  static obs::Counter& miss_counter = obs::counter("oracle.cache_misses");
  OracleCache& cache = OracleCache::instance();
  std::optional<std::vector<int>> result;
  if (cache.lookup(key, &result)) {
    ++hits_;
    hit_counter.add();
    return result;
  }
  ++misses_;
  miss_counter.add();
  result =
      path_with_exact_vertices(graph_, from, to, forbidden, target_vertices);
  cache.insert(key, result);
  return result;
}

void BlockOracle::prewarm_fault_free() {
  OracleCache& cache = OracleCache::instance();
  if (cache.prewarmed.load(std::memory_order_acquire)) return;
  BlockOracle oracle;
  for (int from = 0; from < kBlockSize; ++from)
    for (int to = 0; to < kBlockSize; ++to)
      if (from != to) (void)oracle.find_path(from, to, 0, kBlockSize);
  // Set AFTER the fill so a racing prewarmer merely duplicates lookups.
  cache.prewarmed.store(true, std::memory_order_release);
}

void BlockOracle::clear_cache() { OracleCache::instance().clear(); }

}  // namespace starring
