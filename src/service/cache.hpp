// Sharded segmented-LRU cache of canonical embeddings.
//
// Keyed by CanonicalForm::key, valued by the ring computed in the
// canonical frame.  Striped into independently locked shards the way
// BlockOracle stripes its path memo, so concurrent scheduler lanes and
// embedded callers never contend on one lock.  Values are shared_ptrs:
// a hit hands out a reference to the stored ring, which stays alive for
// the response's lifetime even if the entry is evicted mid-flight.
//
// Admission policy (scan resistance): each shard is a segmented LRU.
// A first insert lands in the *probation* segment; only a later hit
// promotes the entry to the *protected* segment, which holds the bulk
// of the shard's budget.  Eviction comes from the probation tail, so a
// one-pass scan (every key touched exactly once) can only churn the
// probation segment — the zipf hot set, promoted by its re-references,
// stays resident.  Protected overflow demotes its LRU entry back to
// probation instead of dropping it, so a cooling entry gets one more
// chance before eviction.
//
// Capacity accounting is exact: the total budget is distributed over
// shards with the remainder spread one entry at a time, and the shard
// count shrinks to the capacity when the budget is smaller than the
// stripe count, so a capacity-4 cache holds exactly 4 entries — never
// 8, never 1.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "perm/permutation.hpp"

namespace starring {

class CanonicalRingCache {
 public:
  using RingPtr = std::shared_ptr<const std::vector<VertexId>>;

  /// Total entry budget across shards, respected exactly (a zero
  /// capacity is clamped to one entry).
  explicit CanonicalRingCache(std::size_t capacity);

  /// nullptr on miss; a hit refreshes the entry's LRU position and
  /// promotes probation entries into the protected segment.
  RingPtr lookup(const std::string& key);

  /// Insert (or refresh) key -> ring.  New entries start in probation;
  /// beyond the shard budget the probation tail is evicted.
  void insert(const std::string& key, RingPtr ring);

  /// Entries currently held (sums shard sizes; approximate under
  /// concurrent writers).
  std::size_t size() const;

  /// The exact total entry budget.
  std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::size_t kMaxShards = 8;

  struct Entry {
    std::string key;
    RingPtr ring;
  };
  using EntryList = std::list<Entry>;

  struct Slot {
    bool in_protected = false;
    EntryList::iterator it;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Exact entry budget of this shard (probation + protected).
    std::size_t cap = 0;
    /// Budget of the protected segment (< cap; the rest is probation).
    std::size_t protected_cap = 0;
    /// Front = most recently used in both segments.
    EntryList probation;
    EntryList protect;
    std::unordered_map<std::string, Slot> index;
  };

  Shard& shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace starring
