// Permutation-kernel microbenchmarks (google-benchmark).
//
// Throughput of the five batched packed-permutation primitives
// (perm/simd.hpp) on the dispatcher's active tier versus the pinned
// scalar tier, plus the service-level relabel_ring path they feed.
// items_per_second is permutations processed; the scalar/active ratio
// on one machine is the SIMD speedup the dispatch actually delivers
// there (on hardware with no vector tier the two series coincide).
//
// The artifact records, per primitive, the fastest observed
// ns-per-batch at n = 9 on both tiers as phase.perm_*_min_ns counters
// — the min statistic is stable enough for CI to gate against the
// committed BENCH_perm.json — plus perm.*_speedup_x100 ratios for the
// README table.
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <vector>

#include "obs/bench_io.hpp"
#include "perm/permutation.hpp"
#include "perm/simd.hpp"
#include "service/canonical.hpp"

using namespace starring;

namespace {

constexpr std::size_t kBatch = 8192;
constexpr int kGateN = 9;  // the regime the gated mins are measured in

enum Op { kRank = 0, kUnrank, kParity, kRelabel, kInverse, kOpCount };
const char* const kOpName[kOpCount] = {"rank", "unrank", "parity", "relabel",
                                       "inverse"};
// [op][tier]: fastest ns for one kBatch-call at n = kGateN; tier 0 =
// scalar, 1 = active.  Filled by the benchmarks, read by main().
double g_min_ns[kOpCount][2] = {};

void note_min(Op op, long tier, double ns) {
  double& slot = g_min_ns[op][tier];
  slot = slot == 0 ? ns : std::min(slot, ns);
}

/// Args: (n, tier as int).  Tier 0 = scalar, 1 = active.
const simd::Kernels& pick(benchmark::State& state) {
  return state.range(1) == 0 ? simd::kernels(simd::Tier::kScalar)
                             : simd::active();
}

std::vector<std::uint64_t> packed_batch(int n) {
  std::mt19937_64 rng(2718);
  std::vector<std::uint64_t> out(kBatch);
  for (std::uint64_t& p : out)
    p = Perm::unrank(rng() % factorial(n), n).bits();
  return out;
}

void set_throughput(benchmark::State& state) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}

/// Run `call` once per iteration, tracking the fastest call for the
/// gated min counter when this is the n = kGateN series.
template <typename F>
void run_kernel_loop(benchmark::State& state, Op op, F&& call) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    call();
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (n == kGateN) note_min(op, state.range(1), ns);
  }
  set_throughput(state);
}

void BM_BatchRank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto packed = packed_batch(n);
  std::vector<VertexId> out(kBatch);
  const simd::Kernels& k = pick(state);
  run_kernel_loop(state, kRank, [&] {
    k.rank(packed.data(), kBatch, n, out.data());
    benchmark::DoNotOptimize(out.data());
  });
}

void BM_BatchUnrank(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(31);
  std::vector<VertexId> ranks(kBatch);
  for (VertexId& r : ranks) r = rng() % factorial(n);
  std::vector<std::uint64_t> out(kBatch);
  const simd::Kernels& k = pick(state);
  run_kernel_loop(state, kUnrank, [&] {
    k.unrank(ranks.data(), kBatch, n, out.data());
    benchmark::DoNotOptimize(out.data());
  });
}

void BM_BatchParity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto packed = packed_batch(n);
  std::vector<std::uint8_t> out(kBatch);
  const simd::Kernels& k = pick(state);
  run_kernel_loop(state, kParity, [&] {
    k.parity(packed.data(), kBatch, n, out.data());
    benchmark::DoNotOptimize(out.data());
  });
}

void BM_BatchRelabel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto packed = packed_batch(n);
  const std::uint64_t g = Perm::unrank(factorial(n) - 1, n).bits();
  std::vector<std::uint64_t> out(kBatch);
  const simd::Kernels& k = pick(state);
  run_kernel_loop(state, kRelabel, [&] {
    k.relabel(g, packed.data(), kBatch, n, out.data());
    benchmark::DoNotOptimize(out.data());
  });
}

void BM_BatchInverse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto packed = packed_batch(n);
  std::vector<std::uint64_t> out(kBatch);
  const simd::Kernels& k = pick(state);
  run_kernel_loop(state, kInverse, [&] {
    k.inverse(packed.data(), kBatch, n, out.data());
    benchmark::DoNotOptimize(out.data());
  });
}

// n = 9 matches the headline embed regime (and feeds the gated mins);
// n = 12 stresses the deeper unrank/rank recurrences.
#define STARRING_PERM_BENCH(fn)                 \
  BENCHMARK(fn)                                 \
      ->Args({9, 0})                            \
      ->Args({9, 1})                            \
      ->Args({12, 0})                           \
      ->Args({12, 1})                           \
      ->Unit(benchmark::kMicrosecond)

STARRING_PERM_BENCH(BM_BatchRank);
STARRING_PERM_BENCH(BM_BatchUnrank);
STARRING_PERM_BENCH(BM_BatchParity);
STARRING_PERM_BENCH(BM_BatchRelabel);
STARRING_PERM_BENCH(BM_BatchInverse);

/// The consumer of the kernels on the service's response path: relabel
/// a whole canonical ring into the caller's frame (unrank -> relabel
/// -> rank per vertex, chunked through the batched kernels).
void BM_RelabelRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(5);
  // A synthetic ring the size of the real n-regime embedding; relabel
  // cost depends only on length, not on ring structure.
  std::vector<VertexId> ring(static_cast<std::size_t>(factorial(n)));
  for (VertexId& v : ring) v = rng() % factorial(n);
  const Perm g = Perm::unrank(1 + rng() % (factorial(n) - 1), n);
  for (auto _ : state) {
    auto out = relabel_ring(ring, g, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ring.size()));
}
BENCHMARK(BM_RelabelRing)->Arg(8)->Arg(9)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  obs::BenchRecorder rec("perm");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  rec.note_n(kGateN);
  rec.note_faults(0);
  for (int op = 0; op < kOpCount; ++op) {
    const double scalar_ns = g_min_ns[op][0];
    const double active_ns = g_min_ns[op][1];
    if (scalar_ns <= 0 || active_ns <= 0) continue;  // filtered run
    const std::string base = std::string("perm.") + kOpName[op];
    // phase.* naming so bench_compare.py treats them as gateable
    // timings; speedup is informational (it moves with the hardware).
    rec.add_counter("phase." + base + "_scalar_min_ns", scalar_ns);
    rec.add_counter("phase." + base + "_simd_min_ns", active_ns);
    rec.add_counter(base + "_speedup_x100", scalar_ns / active_ns * 100.0);
  }
  return 0;
}
