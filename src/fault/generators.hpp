// Deterministic fault-pattern generators for the experiment harness.
//
// Every generator takes an explicit 64-bit seed so experiment rows are
// reproducible run to run.  The adversarial generators realize the
// paper's worst-case discussion: faults confined to one partite set
// (which caps any healthy ring at n! - 2|Fv|) and faults clustered
// around a vertex or inside a small substar.
#pragma once

#include <cstdint>
#include <random>

#include "fault/fault.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {

/// |count| distinct vertex faults drawn uniformly from S_n.
FaultSet random_vertex_faults(const StarGraph& g, int count,
                              std::uint64_t seed);

/// |count| distinct vertex faults, all from the partite set of the given
/// parity (0 = even permutations, 1 = odd).  The worst case for ring
/// length: every faulty even vertex forces an odd vertex to be skipped.
FaultSet same_partite_vertex_faults(const StarGraph& g, int count, int parity,
                                    std::uint64_t seed);

/// |count| faults at distinct neighbours of a random centre vertex (the
/// centre stays healthy).  Stresses local connectivity: count = n-3
/// neighbours gone leaves the centre with degree 2.  Requires
/// count <= n-1.
FaultSet clustered_neighbor_faults(const StarGraph& g, int count,
                                   std::uint64_t seed);

/// |count| faults drawn from one random embedded S_m with m as small as
/// the count permits (m! >= count).  The regime where the
/// Latifi–Bagherzadeh baseline shines.
FaultSet substar_clustered_faults(const StarGraph& g, int count,
                                  std::uint64_t seed);

/// |count| distinct edge faults drawn uniformly.
FaultSet random_edge_faults(const StarGraph& g, int count, std::uint64_t seed);

/// All |count| edge faults incident to one random vertex (count <= n-1):
/// the vertex keeps degree n-1-count.  Worst case for edge-fault ring
/// embedding (at count = n-2 the vertex could be cut to degree 1).
FaultSet clustered_edge_faults(const StarGraph& g, int count,
                               std::uint64_t seed);

/// Mixed faults: nv vertex faults and ne edge faults, uniform, disjoint
/// (no faulty edge touches a faulty vertex, so both fault kinds bite).
FaultSet mixed_faults(const StarGraph& g, int nv, int ne, std::uint64_t seed);

}  // namespace starring
