// Sharded LRU cache of canonical embeddings.
//
// Keyed by CanonicalForm::key, valued by the ring computed in the
// canonical frame.  Striped into independently locked shards the way
// BlockOracle stripes its path memo, so concurrent scheduler lanes and
// embedded callers never contend on one lock.  Values are shared_ptrs:
// a hit hands out a reference to the stored ring, which stays alive for
// the response's lifetime even if the entry is evicted mid-flight.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "perm/permutation.hpp"

namespace starring {

class CanonicalRingCache {
 public:
  using RingPtr = std::shared_ptr<const std::vector<VertexId>>;

  /// Total entry budget across shards (each shard holds its share,
  /// at least one entry).
  explicit CanonicalRingCache(std::size_t capacity);

  /// nullptr on miss; a hit refreshes the entry's LRU position.
  RingPtr lookup(const std::string& key);

  /// Insert (or refresh) key -> ring, evicting the shard's least
  /// recently used entry beyond capacity.
  void insert(const std::string& key, RingPtr ring);

  /// Entries currently held (sums shard sizes; approximate under
  /// concurrent writers).
  std::size_t size() const;

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, RingPtr>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, RingPtr>>::iterator>
        index;
  };

  Shard& shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }

  std::size_t per_shard_;
  Shard shards_[kShards];
};

}  // namespace starring
