// Robustness tests for the on-disk oracle snapshot
// (core/oracle_store.hpp): a clean round trip is bit-exact, and every
// way a file can lie — truncation, flipped payload bytes, wrong
// version, wrong magic, out-of-bounds section table — is rejected
// cleanly (nullopt + oracle.snapshot_rejected) so the daemon falls
// back to cold recomputation instead of crashing or loading garbage.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/block_oracle.hpp"
#include "core/oracle_store.hpp"
#include "obs/metrics.hpp"

namespace starring {
namespace {

class OracleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    path_ = ::testing::TempDir() + "oracle_snapshot_test.bin";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string path_;
};

std::int64_t rejected_count() {
  return obs::counter("oracle.snapshot_rejected").value();
}

OracleSnapshot sample_snapshot() {
  OracleSnapshot snap;
  for (int i = 0; i < 40; ++i) {
    BlockOracle::MemoEntry e;
    e.key = static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
    e.val.len = static_cast<std::int8_t>(i % 25 - 1);  // includes -1
    for (int j = 0; j < BlockOracle::kBlockSize; ++j)
      e.val.v[static_cast<std::size_t>(j)] =
          static_cast<std::int8_t>((i + j) % 24);
    snap.memo.push_back(e);
  }
  snap.rings.push_back({7, "g-canonical-key", {0, 1, 2, 3, 4, 5039}});
  snap.rings.push_back({9, "", {}});  // empty key and ring are legal
  std::vector<VertexId> big(1000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<VertexId>(i * 7919);
  snap.rings.push_back({9, "big", std::move(big)});
  return snap;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(OracleStoreTest, RoundTripIsBitExact) {
  const OracleSnapshot snap = sample_snapshot();
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, snap, &err)) << err;

  const std::int64_t before = rejected_count();
  const auto loaded = load_oracle_snapshot(path_, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  EXPECT_EQ(rejected_count(), before);

  ASSERT_EQ(loaded->memo.size(), snap.memo.size());
  for (std::size_t i = 0; i < snap.memo.size(); ++i) {
    EXPECT_EQ(loaded->memo[i].key, snap.memo[i].key);
    EXPECT_EQ(loaded->memo[i].val.len, snap.memo[i].val.len);
    EXPECT_EQ(loaded->memo[i].val.v, snap.memo[i].val.v);
  }
  ASSERT_EQ(loaded->rings.size(), snap.rings.size());
  for (std::size_t i = 0; i < snap.rings.size(); ++i) {
    EXPECT_EQ(loaded->rings[i].n, snap.rings[i].n);
    EXPECT_EQ(loaded->rings[i].key, snap.rings[i].key);
    EXPECT_EQ(loaded->rings[i].ring, snap.rings[i].ring);
  }
}

TEST_F(OracleStoreTest, MissingFileIsRejected) {
  const std::int64_t before = rejected_count();
  std::string err;
  EXPECT_FALSE(load_oracle_snapshot(path_, &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(rejected_count(), before + 1);
}

TEST_F(OracleStoreTest, TruncationAnywhereIsRejected) {
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, sample_snapshot(), &err)) << err;
  const std::string full = slurp(path_);
  ASSERT_GT(full.size(), 64u);
  // Every prefix class: inside the magic, inside the header, inside the
  // section table, inside each payload, one byte short of complete.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{4}, std::size_t{15}, std::size_t{23},
        std::size_t{30}, std::size_t{60}, full.size() / 2,
        full.size() - 1}) {
    const std::int64_t before = rejected_count();
    dump(path_, full.substr(0, cut));
    EXPECT_FALSE(load_oracle_snapshot(path_).has_value())
        << "cut at " << cut;
    EXPECT_EQ(rejected_count(), before + 1) << "cut at " << cut;
  }
}

TEST_F(OracleStoreTest, CorruptPayloadFailsChecksum) {
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, sample_snapshot(), &err)) << err;
  std::string bytes = slurp(path_);
  // Flip one bit in the middle of the checksummed region.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  dump(path_, bytes);
  const std::int64_t before = rejected_count();
  EXPECT_FALSE(load_oracle_snapshot(path_, &err).has_value());
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
  EXPECT_EQ(rejected_count(), before + 1);
}

TEST_F(OracleStoreTest, VersionMismatchIsRejected) {
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, sample_snapshot(), &err)) << err;
  std::string bytes = slurp(path_);
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);  // version u32 LSB
  dump(path_, bytes);
  const std::int64_t before = rejected_count();
  EXPECT_FALSE(load_oracle_snapshot(path_, &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_EQ(rejected_count(), before + 1);
}

TEST_F(OracleStoreTest, BadMagicIsRejected) {
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, sample_snapshot(), &err)) << err;
  std::string bytes = slurp(path_);
  bytes[0] = 'X';
  dump(path_, bytes);
  const std::int64_t before = rejected_count();
  EXPECT_FALSE(load_oracle_snapshot(path_, &err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
  EXPECT_EQ(rejected_count(), before + 1);
}

TEST_F(OracleStoreTest, LyingSectionCountIsRejectedNotOverread) {
  // A section table that claims more records than the payload holds
  // must be caught by the bounds-checked cursor.  The count lives in
  // the checksummed region, so recompute the checksum to get past that
  // check and exercise the structural validation itself.
  OracleSnapshot snap;
  snap.rings.push_back({7, "k", {1, 2, 3}});
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, snap, &err)) << err;
  std::string bytes = slurp(path_);
  // Section table entry 1 (rings) count field: header 24 + entry size
  // 24 + offset 16 within the entry.
  const std::size_t count_at = 24 + 24 + 16;
  bytes[count_at] = 9;  // claims 9 rings; payload holds 1
  // Recompute the 4-lane word-folded FNV-1a over [24, EOF) and patch
  // the stored checksum (same scheme as the store: four lanes over
  // 32-byte blocks, asymmetric fold, then remaining words and tail
  // bytes sequentially).
  constexpr std::uint64_t kBasis = 14695981039346656037ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  const auto word_at = [&](std::size_t at) {
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(static_cast<unsigned char>(
               bytes[at + static_cast<std::size_t>(b)]))
           << (8 * b);
    return w;
  };
  std::uint64_t lane[4] = {kBasis, kBasis + 1, kBasis + 2, kBasis + 3};
  std::size_t i = 24;
  for (; i + 32 <= bytes.size(); i += 32)
    for (int l = 0; l < 4; ++l) {
      lane[l] ^= word_at(i + static_cast<std::size_t>(l) * 8);
      lane[l] *= kPrime;
    }
  std::uint64_t h = lane[0];
  for (int l = 1; l < 4; ++l) h = (h * kPrime) ^ lane[l];
  for (; i + 8 <= bytes.size(); i += 8) {
    h ^= word_at(i);
    h *= kPrime;
  }
  for (; i < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= kPrime;
  }
  for (int i = 0; i < 8; ++i)
    bytes[16 + static_cast<std::size_t>(i)] =
        static_cast<char>((h >> (8 * i)) & 0xFF);
  dump(path_, bytes);
  const std::int64_t before = rejected_count();
  EXPECT_FALSE(load_oracle_snapshot(path_, &err).has_value());
  EXPECT_NE(err.find("rings"), std::string::npos) << err;
  EXPECT_EQ(rejected_count(), before + 1);
}

TEST_F(OracleStoreTest, MemoRoundTripsThroughOracle) {
  // prewarm -> export -> file -> load -> import into a cleared cache
  // must reproduce the published fault-free plane and identical query
  // answers.
  BlockOracle::prewarm_fault_free();
  OracleSnapshot snap;
  snap.memo = BlockOracle::export_memo();
  ASSERT_GE(snap.memo.size(),
            static_cast<std::size_t>(BlockOracle::kBlockSize) *
                (BlockOracle::kBlockSize - 1));
  std::string err;
  ASSERT_TRUE(write_oracle_snapshot(path_, snap, &err)) << err;

  BlockOracle ref;
  std::vector<BlockOracle::PathVal> want(24 * 24);
  for (int from = 0; from < 24; ++from)
    for (int to = 0; to < 24; ++to)
      if (from != to)
        ref.find_path_into(from, to, 0, 24,
                           &want[static_cast<std::size_t>(from) * 24 +
                                 static_cast<std::size_t>(to)]);

  BlockOracle::clear_cache();
  ASSERT_EQ(BlockOracle::fault_free_plane(), nullptr);
  const auto loaded = load_oracle_snapshot(path_, &err);
  ASSERT_TRUE(loaded.has_value()) << err;
  BlockOracle::import_memo(loaded->memo);
  ASSERT_NE(BlockOracle::fault_free_plane(), nullptr);

  BlockOracle oracle;
  for (int from = 0; from < 24; ++from)
    for (int to = 0; to < 24; ++to) {
      if (from == to) continue;
      BlockOracle::PathVal got;
      oracle.find_path_into(from, to, 0, 24, &got);
      const BlockOracle::PathVal& w =
          want[static_cast<std::size_t>(from) * 24 +
               static_cast<std::size_t>(to)];
      ASSERT_EQ(got.len, w.len) << from << "->" << to;
      ASSERT_EQ(got.v, w.v) << from << "->" << to;
    }
  EXPECT_EQ(oracle.cache_misses(), 0u);
}

}  // namespace
}  // namespace starring
