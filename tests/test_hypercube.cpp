// Tests for the hypercube comparison substrate: Q_n model and the
// Yang-Tien-Raghavendra fault-tolerant ring embedding (2^n - 2|Fv|
// under |Fv| <= n-2).
#include <gtest/gtest.h>

#include <random>

#include "hypercube/hypercube.hpp"

namespace starring {
namespace {

CubeFaults random_faults(int n, int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << n) - 1);
  CubeFaults f;
  while (static_cast<int>(f.size()) < count) f.insert(dist(rng));
  return f;
}

CubeFaults same_parity_faults(int n, int count, int parity,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << n) - 1);
  CubeFaults f;
  while (static_cast<int>(f.size()) < count) {
    const std::uint32_t v = dist(rng);
    if (Hypercube::parity(v) == parity) f.insert(v);
  }
  return f;
}

TEST(Hypercube, ModelBasics) {
  const Hypercube q(5);
  EXPECT_EQ(q.num_vertices(), 32u);
  EXPECT_EQ(q.degree(), 5);
  EXPECT_TRUE(Hypercube::adjacent(0b00101, 0b00100));
  EXPECT_FALSE(Hypercube::adjacent(0b00101, 0b00110));
  EXPECT_FALSE(Hypercube::adjacent(7, 7));
  EXPECT_EQ(Hypercube::parity(0b1011), 1);
  EXPECT_EQ(Hypercube::parity(0b1001), 0);
}

TEST(Hypercube, FaultFreeHamiltonianCycle) {
  for (int n = 2; n <= 10; ++n) {
    const auto ring = embed_hypercube_ring(n, {});
    ASSERT_TRUE(ring.has_value()) << "Q_" << n;
    EXPECT_EQ(ring->size(), 1u << n);
    EXPECT_TRUE(verify_hypercube_ring(n, {}, *ring));
  }
}

class CubeRingParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CubeRingParamTest, FaultyRingMeetsBound) {
  const auto [n, nf] = GetParam();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const CubeFaults f = random_faults(n, nf, seed);
    const auto ring = embed_hypercube_ring(n, f);
    ASSERT_TRUE(ring.has_value()) << "Q_" << n << " nf=" << nf
                                  << " seed=" << seed;
    EXPECT_EQ(ring->size(), (1u << n) - 2 * static_cast<unsigned>(nf));
    EXPECT_TRUE(verify_hypercube_ring(n, f, *ring));
  }
}

INSTANTIATE_TEST_SUITE_P(CubeSweep, CubeRingParamTest,
                         ::testing::Values(std::make_tuple(4, 1),
                                           std::make_tuple(4, 2),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(5, 3),
                                           std::make_tuple(6, 4),
                                           std::make_tuple(7, 5),
                                           std::make_tuple(8, 6),
                                           std::make_tuple(10, 8),
                                           std::make_tuple(12, 10)));

TEST(Hypercube, SameParityWorstCase) {
  for (int n = 5; n <= 8; ++n) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const CubeFaults f = same_parity_faults(n, n - 2, 0, seed);
      const auto ring = embed_hypercube_ring(n, f);
      ASSERT_TRUE(ring.has_value()) << n << " " << seed;
      // Bipartite ceiling: all faults even => 2^n - 2|Fv| is optimal.
      EXPECT_EQ(ring->size(), (1u << n) - 2u * (static_cast<unsigned>(n) - 2));
      EXPECT_TRUE(verify_hypercube_ring(n, f, *ring));
    }
  }
}

TEST(Hypercube, VerifierCatchesBadRings) {
  const auto ring = embed_hypercube_ring(5, {});
  ASSERT_TRUE(ring.has_value());
  auto broken = *ring;
  std::swap(broken[0], broken[7]);
  EXPECT_FALSE(verify_hypercube_ring(5, {}, broken));
  auto repeated = *ring;
  repeated[3] = repeated[11];
  EXPECT_FALSE(verify_hypercube_ring(5, {}, repeated));
  CubeFaults f{(*ring)[4]};
  EXPECT_FALSE(verify_hypercube_ring(5, f, *ring));
}

TEST(Hypercube, RegimeBoundaryQ3) {
  // Q_3 with one fault: optimal ring is 6 = 8 - 2.
  for (std::uint32_t fault = 0; fault < 8; ++fault) {
    const auto ring = embed_hypercube_ring(3, {fault});
    ASSERT_TRUE(ring.has_value());
    EXPECT_EQ(ring->size(), 6u);
    EXPECT_TRUE(verify_hypercube_ring(3, {fault}, *ring));
  }
}

TEST(Hypercube, StarVsCubeComparableSizes) {
  // The paper's framing: S_n reaches hypercube-class sizes with far
  // smaller degree.  Q_12 (4096 nodes, degree 12) vs S_7 (5040 nodes,
  // degree 6): both lose exactly 2 vertices per fault in the regime.
  const CubeFaults f = random_faults(12, 5, 3);
  const auto ring = embed_hypercube_ring(12, f);
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->size(), 4096u - 10u);
}

}  // namespace
}  // namespace starring
