file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_diameter.dir/bench_fault_diameter.cpp.o"
  "CMakeFiles/bench_fault_diameter.dir/bench_fault_diameter.cpp.o.d"
  "bench_fault_diameter"
  "bench_fault_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
