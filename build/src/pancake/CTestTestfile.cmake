# CMake generated Testfile for 
# Source directory: /root/repo/src/pancake
# Build directory: /root/repo/build/src/pancake
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
