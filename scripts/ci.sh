#!/usr/bin/env bash
# CI entry point: the tier-1 verify line, then an ASan+UBSan build of
# the test suite so the threading and instrumentation code is
# sanitizer-checked on every PR.
#
# Usage: scripts/ci.sh [--tier1-only | --san-only]
# Env:   JOBS=<n> to cap build/test parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

run_tier1=1
run_san=1
case "${1:-}" in
  --tier1-only) run_san=0 ;;
  --san-only) run_tier1=0 ;;
  "") ;;
  *) echo "unknown flag: $1" >&2; exit 2 ;;
esac

if [[ "$run_tier1" == 1 ]]; then
  echo "== tier-1: RelWithDebInfo build + full ctest =="
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")
fi

if [[ "$run_san" == 1 ]]; then
  echo "== sanitizers: ASan+UBSan Debug build + full ctest =="
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && \
    ASAN_OPTIONS=detect_leaks=0 \
    UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure -j "$JOBS")
fi

echo "== ci.sh: all requested stages passed =="
