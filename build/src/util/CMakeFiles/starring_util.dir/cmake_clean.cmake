file(REMOVE_RECURSE
  "CMakeFiles/starring_util.dir/io.cpp.o"
  "CMakeFiles/starring_util.dir/io.cpp.o.d"
  "libstarring_util.a"
  "libstarring_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
