// Experiment E8 — Lemma 2 cost and quality (google-benchmark), plus the
// splitting-heuristic ablation: first-splitting (the paper's arbitrary
// choice) vs max-splitting (greedy group maximization).
#include <benchmark/benchmark.h>

#include "bench_artifact.hpp"

#include "core/partition_selector.hpp"
#include "fault/generators.hpp"
#include "stargraph/star_graph.hpp"

using namespace starring;

namespace {

void BM_SelectPositions(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto heur = static_cast<SplitHeuristic>(state.range(1));
  const StarGraph g(n);
  const FaultSet f = random_vertex_faults(g, n - 3, 7);
  int worst = 0;
  for (auto _ : state) {
    const auto sel = select_partition_positions(n, f, heur);
    worst = std::max(worst, sel.max_faults_per_block);
    benchmark::DoNotOptimize(sel.positions.data());
  }
  state.counters["max_faults_per_block"] = worst;
}
BENCHMARK(BM_SelectPositions)
    ->ArgsProduct({{5, 6, 7, 8, 9, 10},
                   {static_cast<long>(SplitHeuristic::kFirstSplitting),
                    static_cast<long>(SplitHeuristic::kMaxSplitting)}});

void BM_SelectPathologicalPrefix(benchmark::State& state) {
  // Faults agreeing on a long prefix: the worst case for the scan.
  const int n = static_cast<int>(state.range(0));
  std::vector<Perm> faults;
  std::vector<int> base(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) base[static_cast<std::size_t>(i)] = i;
  for (int k = 0; k < n - 3; ++k) {
    auto v = base;
    // Permute only the trailing three slots, differently per fault.
    std::rotate(v.end() - 3, v.end() - 3 + (k % 3), v.end());
    if (k >= 3) std::swap(v[static_cast<std::size_t>(n - 1)],
                          v[static_cast<std::size_t>(n - 3)]);
    faults.push_back(Perm::of(v));
  }
  for (auto _ : state) {
    const auto sel = select_positions_for(n, faults, n - 4,
                                          SplitHeuristic::kMaxSplitting);
    benchmark::DoNotOptimize(sel.effective_splits);
  }
}
BENCHMARK(BM_SelectPathologicalPrefix)->DenseRange(6, 10);

}  // namespace

STARRING_BENCH_JSON_MAIN("partition");
