// Persistent worker pool behind parallel_for / parallel_reduce.
//
// The construction pipeline fires many short data-parallel regions
// (exit enumeration, vertex emission, verification) per embedding;
// spawning std::threads per call made thread-management overhead scale
// with the number of embeddings rather than with the work.  This pool
// spawns workers once (lazily, on the first region that wants them),
// parks them on a condition variable between regions, and hands out
// work in dynamic chunks so blocks with expensive fault handling do not
// straggle behind cheap healthy ones the way static chunking forces.
//
// Concurrency contract:
//  * One region runs at a time; concurrent callers serialize on an
//    internal mutex.  A region entered from inside a pool worker
//    (nested parallelism) must be run inline by the caller — use
//    ThreadPool::in_worker() to detect this; parallel_for does.
//  * The caller participates in its own region, so a region always
//    makes progress even with zero workers.
//  * Cancellation is cooperative: the region stops handing out chunks
//    once *cancel becomes true (parallel_for trips it on the first
//    exception).
//
// Observability (when the obs layer is enabled):
//   pool.workers  gauge: workers ever spawned
//   pool.tasks    regions executed
//   pool.chunks   dynamic chunks handed out
//   pool.wakeups  times a parked worker woke up and joined a region
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace starring {

/// Largest worker count that makes sense on this host.
inline unsigned default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class ThreadPool {
 public:
  /// Chunk executor: process indices [lo, hi) as participant `lane`
  /// (0 = caller, 1.. = workers).  Must not throw — wrap the user
  /// callable in try/catch and record the exception (parallel_for's
  /// trampoline does).
  using Invoke = void (*)(void* ctx, std::size_t lo, std::size_t hi,
                          unsigned lane);

  /// The process-wide pool, created on first use.
  static ThreadPool& instance();

  /// True while the calling thread is executing inside a region — as a
  /// pool worker, or as the caller working its own lane; a nested
  /// region must then run inline instead of re-entering run().
  static bool in_worker();

  /// Execute one parallel region over [begin, end) with up to `lanes`
  /// participants (the caller plus lanes-1 workers).  Blocks until every
  /// chunk completed.  Preconditions: begin < end, lanes >= 2, not
  /// called from a pool worker.
  void run(std::size_t begin, std::size_t end, unsigned lanes, Invoke invoke,
           void* ctx, const std::atomic<bool>* cancel);

  /// Workers currently spawned (grows on demand, capped).
  unsigned workers() const;

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;

  void ensure_workers(unsigned want);
  void worker_loop();
  void work(unsigned lane);

  std::mutex region_mu_;  // serializes run() across user threads

  mutable std::mutex mu_;  // protects everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // State of the active region; valid only while live_ is true.
  std::uint64_t epoch_ = 0;
  bool live_ = false;
  unsigned max_extra_ = 0;  // workers allowed to join (lanes - 1)
  unsigned joined_ = 0;     // workers that joined this region
  unsigned active_ = 0;     // workers currently executing chunks
  std::size_t end_index_ = 0;
  std::size_t chunk_ = 1;
  Invoke invoke_ = nullptr;
  void* ctx_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  // Submitting thread's span context, adopted by every worker of the
  // region so spans opened inside user callables parent correctly
  // across the fan-out.
  obs::trace::Context trace_ctx_{};
  std::atomic<std::size_t> next_{0};
};

}  // namespace starring
