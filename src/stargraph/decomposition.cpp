#include "stargraph/decomposition.hpp"

#include <cassert>

#include "graph/graph.hpp"

namespace starring {

namespace {

/// True iff `p` is the canonical representative of its pattern with
/// free positions 0..r-1: the free symbols appear in ascending order.
bool canonical_rep(const Perm& p, int r) {
  for (int i = 0; i + 1 < r; ++i)
    if (p.get(i) > p.get(i + 1)) return false;
  return true;
}

/// The pattern with free positions 0..r-1 containing `p`.
SubstarPattern pattern_of(const Perm& p, int r) {
  SubstarPattern pat = SubstarPattern::whole(p.size());
  for (int i = r; i < p.size(); ++i) pat = pat.child(i, p.get(i));
  return pat;
}

}  // namespace

std::vector<std::vector<VertexId>> six_ring_decomposition(const StarGraph& g) {
  assert(g.n() >= 3);
  std::vector<std::vector<VertexId>> rings;
  rings.reserve(g.num_vertices() / 6);
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    const Perm p = g.vertex(id);
    if (!canonical_rep(p, 3)) continue;
    // Walk the 6-cycle: alternating swaps of position 0 with 1 and 2.
    std::vector<VertexId> ring;
    ring.reserve(6);
    Perm cur = p;
    for (int step = 0; step < 6; ++step) {
      ring.push_back(cur.rank());
      cur = cur.star_move(step % 2 == 0 ? 1 : 2);
    }
    assert(cur == p);
    rings.push_back(std::move(ring));
  }
  return rings;
}

std::vector<std::vector<VertexId>> block_ring_decomposition(
    const StarGraph& g) {
  assert(g.n() >= 4);
  // One Hamiltonian cycle of the abstract 24-vertex block, reused for
  // every block through its local indexing.
  const SmallGraph block = SubstarPattern::whole(4).block_graph();
  const auto cycle = hamiltonian_cycle(block, 0);
  assert(cycle.has_value());
  std::vector<std::vector<VertexId>> rings;
  rings.reserve(g.num_vertices() / 24);
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    const Perm p = g.vertex(id);
    if (!canonical_rep(p, 4)) continue;
    const SubstarPattern pat = pattern_of(p, 4);
    std::vector<VertexId> ring;
    ring.reserve(24);
    for (const int local : *cycle)
      ring.push_back(pat.member(static_cast<std::uint64_t>(local)).rank());
    rings.push_back(std::move(ring));
  }
  return rings;
}

std::vector<std::vector<VertexId>> faulty_block_ring_decomposition(
    const StarGraph& g, const FaultSet& faults) {
  assert(g.n() >= 4);
  const SmallGraph block = SubstarPattern::whole(4).block_graph();
  const auto full_cycle = hamiltonian_cycle(block, 0);
  assert(full_cycle.has_value());
  std::vector<std::vector<VertexId>> rings;
  rings.reserve(g.num_vertices() / 24);
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    const Perm p = g.vertex(id);
    if (!canonical_rep(p, 4)) continue;
    const SubstarPattern pat = pattern_of(p, 4);
    std::uint32_t forbidden = 0;
    for (const Perm& f : faults.vertex_faults())
      if (pat.contains(f)) forbidden |= 1u << pat.local_index(f);
    const std::vector<int>* cycle = nullptr;
    LongestCycleResult faulty_cycle;
    if (forbidden == 0) {
      cycle = &*full_cycle;
    } else {
      faulty_cycle = longest_cycle(block, forbidden);
      if (faulty_cycle.length < 3) continue;  // ring destroyed
      cycle = &faulty_cycle.cycle;
    }
    std::vector<VertexId> ring;
    ring.reserve(cycle->size());
    for (const int local : *cycle)
      ring.push_back(pat.member(static_cast<std::uint64_t>(local)).rank());
    rings.push_back(std::move(ring));
  }
  return rings;
}

}  // namespace starring
