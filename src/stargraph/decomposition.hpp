// Disjoint structural decompositions of S_n.
//
// Two classical facts the paper's machinery makes constructive:
//  * every 3-vertex (embedded S_3) is a 6-cycle, so any
//    (i_1, ..., i_{n-3})-partition decomposes S_n into n!/6 pairwise
//    vertex-disjoint 6-rings;
//  * more generally the R_r construction partitions S_n into n!/r!
//    disjoint embedded S_r's, and each of those embeds a Hamiltonian
//    ring of its own, giving a disjoint cycle cover by r!-rings.
//
// Disjoint ring covers are what a multiprogrammed machine hands to
// independent jobs: each job gets its own ring, no link is shared.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {

/// Partition S_n into n!/6 vertex-disjoint 6-cycles (one per 3-vertex
/// of the canonical partition along the highest positions).  Each entry
/// is the cyclic vertex sequence of one ring.  `threads` workers share
/// the n! unranking scan and the per-ring walks (0 = hardware
/// concurrency); the cover is identical at any count.
std::vector<std::vector<VertexId>> six_ring_decomposition(
    const StarGraph& g, unsigned threads = 1);

/// Partition S_n into n!/24 vertex-disjoint 24-rings (a Hamiltonian
/// ring inside every S_4 block of the canonical partition).
std::vector<std::vector<VertexId>> block_ring_decomposition(
    const StarGraph& g, unsigned threads = 1);

/// Fault-aware variant: rings of the 24-ring cover that contain a fault
/// shrink to 24 - 2*(faults inside) vertices (or drop out entirely when
/// too damaged); healthy rings stay full.  The usable-cycle count and
/// sizes quantify how gracefully a multiprogrammed machine degrades.
std::vector<std::vector<VertexId>> faulty_block_ring_decomposition(
    const StarGraph& g, const FaultSet& faults, unsigned threads = 1);

}  // namespace starring
