file(REMOVE_RECURSE
  "CMakeFiles/starring_sim.dir/ring_sim.cpp.o"
  "CMakeFiles/starring_sim.dir/ring_sim.cpp.o.d"
  "CMakeFiles/starring_sim.dir/self_healing.cpp.o"
  "CMakeFiles/starring_sim.dir/self_healing.cpp.o.d"
  "libstarring_sim.a"
  "libstarring_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
