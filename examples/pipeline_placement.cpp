// Pipeline placement: give a ring-structured job a ring of EXACTLY its
// size.
//
//   $ ./pipeline_placement [n] [stages...]
//
// A multiprogrammed star-graph machine runs several ring-pipelines at
// once.  Each job wants a cycle of exactly its stage count (even, >= 6:
// the star graph is bipartite with girth 6); the even-pancyclicity
// extension provides one.  Jobs are kept pairwise disjoint by symbol
// relabeling: relabeling symbols is a graph automorphism (it commutes
// with the position swaps that define adjacency), and a ring of length
// <= (n-1)! lives inside the substar that pins one symbol to the last
// position — so rings relabeled to pin DIFFERENT symbols there cannot
// share a processor.
#include <cstdlib>
#include <iostream>
#include <unordered_set>
#include <vector>

#include "core/verify.hpp"
#include "extensions/pancyclic.hpp"
#include "sim/ring_sim.hpp"

namespace {

using namespace starring;

/// Apply the symbol transposition (a b) to every vertex of the ring —
/// an automorphism of S_n.
std::vector<VertexId> relabel(const StarGraph& g,
                              const std::vector<VertexId>& ring, int a,
                              int b) {
  std::vector<VertexId> out;
  out.reserve(ring.size());
  std::vector<int> syms(static_cast<std::size_t>(g.n()));
  for (const VertexId id : ring) {
    const Perm p = g.vertex(id);
    for (int i = 0; i < g.n(); ++i) {
      int s = p.get(i);
      if (s == a)
        s = b;
      else if (s == b)
        s = a;
      syms[static_cast<std::size_t>(i)] = s;
    }
    out.push_back(Perm::of(syms).rank());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;
  std::vector<std::uint64_t> stages;
  for (int a = 2; a < argc; ++a)
    stages.push_back(std::strtoull(argv[a], nullptr, 10));
  if (stages.empty()) stages = {6, 24, 92, 118};

  const StarGraph g(n);
  std::cout << "placing disjoint ring pipelines on S_" << n << " ("
            << g.num_vertices() << " processors)\n\n";

  std::unordered_set<VertexId> in_use;
  SimParams params;
  bool all_ok = true;
  int column = 0;  // which symbol gets pinned to the last position
  for (const std::uint64_t want : stages) {
    auto ring = embed_even_ring(g, want);
    if (!ring) {
      std::cout << "  pipeline of " << want
                << " stages: no ring of that length (odd, too small, or "
                   "too large)\n";
      all_ok = false;
      continue;
    }
    const bool fits_column = want <= factorial(n - 1);
    if (fits_column && column < n) {
      // embed_even_ring pins symbol n-1 to the last position; move the
      // ring into this job's own column.
      ring = relabel(g, *ring, n - 1, column);
      ++column;
    }
    const auto rep = verify_healthy_ring(g, FaultSet{}, *ring);
    if (!rep.valid || rep.length != want) {
      std::cout << "  pipeline of " << want << " stages: INVALID ring ("
                << rep.error << ")\n";
      all_ok = false;
      continue;
    }
    std::size_t overlap = 0;
    for (const VertexId id : *ring)
      if (!in_use.insert(id).second) ++overlap;
    if (overlap != 0) all_ok = false;
    RingNetworkSim sim(*ring, params);
    const auto m = sim.run_token_ring(1);
    std::cout << "  pipeline of " << want << " stages: "
              << (fits_column ? "column " + std::to_string(column - 1)
                              : std::string("whole-machine"))
              << ", verified, one revolution " << m.completion_time_us
              << " us" << (overlap ? "  OVERLAP!" : "") << "\n";
  }
  std::cout << "\n" << in_use.size() << " of " << g.num_vertices()
            << " processors carry a pipeline stage; placements are "
               "pairwise disjoint\n(each job fits one 'column' substar; "
               "up to n = " << n << " columns available).\n";
  return all_ok ? 0 : 1;
}
