// Super-ring construction: Definitions 4-5 and Lemma 3 of the paper.
//
// An R_r is a ring of r-vertices (embedded S_r patterns) in which
// consecutive patterns are adjacent (differ in one fixed position).
// The construction starts from the a_1-partition of S_n — whose n
// children form a complete graph K_n of (n-1)-vertices, so any cyclic
// order is an R_{n-1} — and refines level by level: an a_j-partition
// turns each r-vertex of the current ring into a complete graph K_r of
// (r-1)-vertices, a Hamiltonian path is threaded through each K_r from
// an entry child (attached to the previous ring element's exit) to an
// exit child (attached to the next element's entry), and the paths
// interleaved with the connecting super-edges form the R_{r-1}
// (Lemma 3's interleaving step).
//
// Child adjacency across a ring edge (Lemma 1's mechanism): if A and B
// are consecutive with dif position p, A fixing symbol a and B fixing
// symbol b at p, then child(A, q) at the new position is adjacent to
// child(B, q) exactly when q differs from both a and b; the two
// non-adjacent leftovers are child(A, b) and child(B, a).  Hence the
// connector symbol c_k chosen between ring elements k and k+1 must avoid
// b_k, and the entry/exit children of one element must differ
// (c_k != c_{k-1}).
//
// Fault awareness (the paper's properties P1/P3): partition positions
// from Lemma 2 guarantee P1 (each final block has at most one fault);
// this builder additionally orders children inside each K_r path so that
// fault-containing children sit away from the path ends and away from
// each other whenever possible, which realizes P3 (no two consecutive
// faulty blocks) for every fault population the theorem admits.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "stargraph/substar.hpp"

namespace starring {

struct SuperRing {
  /// Cyclically ordered patterns; consecutive ones (and last/first) are
  /// adjacent.  All patterns have the same r.
  std::vector<SubstarPattern> ring;

  int r() const { return ring.empty() ? 0 : ring.front().r(); }
};

/// Build the R_4 of S_n by refining through `positions` (from
/// select_partition_positions; size n-4, n >= 5).  Faults steer the
/// child orderings (P3); pass an empty FaultSet for the fault-free ring.
/// `rotation` offsets the initial K_n ordering — callers use different
/// rotations as restart diversification.
///
/// `exclude`, if given, is a pattern reachable through `positions`
/// (its fixed positions are position[0..n-1-r(exclude)]-compatible);
/// the builder drops it — and with it all its blocks — from the ring
/// while keeping consecutive adjacency, by forcing it into the middle
/// of its parent's K_r path.  This is the mechanism behind the
/// Latifi–Bagherzadeh n!-m! baseline (excise the substar holding all
/// faults).  Returns nullopt only if the internal connector-choice
/// system is infeasible (never in the guarantee regime; asserted in
/// debug builds).
std::optional<SuperRing> build_block_ring(int n, std::span<const int> positions,
                                          const FaultSet& faults,
                                          int rotation = 0,
                                          const SubstarPattern* exclude = nullptr);

/// Validity check used by tests: consecutive patterns adjacent, all
/// distinct, and together they cover n! - missing_vertices vertices
/// (missing_vertices = m! when an S_m was excluded, else 0).
bool is_valid_super_ring(int n, const SuperRing& sr,
                         std::uint64_t missing_vertices = 0);

/// Linear (open) variant for the longest-path extension: a sequence of
/// all n!/24 blocks with consecutive patterns adjacent, whose FIRST
/// block contains `s` and LAST block contains `t`.  Precondition:
/// positions[0] is a position where s and t differ (so they start in
/// different first-level children and the endpoint invariant can be
/// pushed down every level).  Same fault-spreading behaviour as the
/// ring builder.
std::optional<SuperRing> build_block_path(int n, std::span<const int> positions,
                                          const FaultSet& faults,
                                          const Perm& s, const Perm& t,
                                          int rotation = 0);

/// Validity check for the open variant: consecutive adjacency (no
/// wraparound), full coverage, endpoints contain s and t.
bool is_valid_super_path(int n, const SuperRing& sp, const Perm& s,
                         const Perm& t);

/// Number of vertex faults of `faults` lying inside `p`.
int faults_in_pattern(const SubstarPattern& p, const FaultSet& faults);

}  // namespace starring
