file(REMOVE_RECURSE
  "CMakeFiles/bench_star_vs_cube.dir/bench_star_vs_cube.cpp.o"
  "CMakeFiles/bench_star_vs_cube.dir/bench_star_vs_cube.cpp.o.d"
  "bench_star_vs_cube"
  "bench_star_vs_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_vs_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
