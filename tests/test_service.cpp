// Tests for the embedding service: cache semantics (bit-identical
// hits, cross-relabeling sharing, eviction), the batched scheduler
// (submit/drain, callbacks, backpressure rejection), verification
// plumbing, and failure surfaces.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <vector>

#include "core/verify.hpp"
#include "fault/generators.hpp"
#include "service/cache.hpp"
#include "service/service.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

ServiceRequest make_request(std::uint64_t id, int n, FaultSet faults,
                            bool verify = false) {
  ServiceRequest r;
  r.id = id;
  r.n = n;
  r.faults = std::move(faults);
  r.verify = verify;
  return r;
}

TEST(EmbedService, ProcessNowHitIsBitIdentical) {
  const StarGraph g(6);
  const FaultSet faults = random_vertex_faults(g, 2, /*seed=*/3);
  EmbedService svc;
  const ServiceResponse fresh = svc.process_now(make_request(1, 6, faults));
  ASSERT_EQ(fresh.status, ServiceStatus::kOk);
  EXPECT_FALSE(fresh.cache_hit);
  const ServiceResponse hit = svc.process_now(make_request(2, 6, faults));
  ASSERT_EQ(hit.status, ServiceStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  // The acceptance bar: a hit's ring is bit-identical to the fresh
  // computation's, because both were computed in the canonical frame
  // and relabeled with the same map.
  EXPECT_EQ(hit.ring, fresh.ring);
}

TEST(EmbedService, EquivalentRelabeledRequestsShareTheCache) {
  const int n = 6;
  const StarGraph g(n);
  const FaultSet faults = random_vertex_faults(g, 2, /*seed=*/9);
  EmbedService svc;
  ASSERT_EQ(svc.process_now(make_request(1, n, faults)).status,
            ServiceStatus::kOk);
  std::mt19937_64 rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const Perm h = Perm::unrank(rng() % factorial(n), n);
    const FaultSet moved = faults.relabeled(h);
    const ServiceResponse r =
        svc.process_now(make_request(10 + trial, n, moved, /*verify=*/true));
    ASSERT_EQ(r.status, ServiceStatus::kOk) << r.reason;
    EXPECT_TRUE(r.cache_hit) << "relabeled instance missed the cache";
    EXPECT_TRUE(r.verified);
    const RingReport rep = verify_healthy_ring(g, moved, r.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
  }
}

TEST(EmbedService, SubmitDrainNextResponse) {
  const StarGraph g(5);
  EmbedService svc;
  std::mt19937_64 rng(29);
  const int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const int nf = static_cast<int>(rng() % 3);  // 0..2 = n-3
    ASSERT_TRUE(svc.submit(
        make_request(i, 5, random_vertex_faults(g, nf, rng()), true)));
  }
  svc.drain();
  EXPECT_FALSE(svc.submit(make_request(999, 5, FaultSet{})))
      << "submit after drain must be refused";
  std::map<std::uint64_t, ServiceResponse> got;
  while (auto r = svc.next_response()) got.emplace(r->id, std::move(*r));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kRequests));
  for (const auto& [id, r] : got) {
    EXPECT_EQ(r.status, ServiceStatus::kOk) << "id=" << id << ": " << r.reason;
    EXPECT_TRUE(r.verified);
  }
}

TEST(EmbedService, CallbacksRunForEveryRequest) {
  const StarGraph g(5);
  EmbedService svc;
  std::atomic<int> done{0};
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(svc.submit(
        make_request(i, 5, random_vertex_faults(g, i % 3, i)),
        [&](ServiceResponse r) {
          done.fetch_add(1);
          if (r.status == ServiceStatus::kOk) ok.fetch_add(1);
        }));
  }
  svc.drain();
  while (svc.next_response()) {
  }
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(ok.load(), 16);
}

TEST(EmbedService, MixedDimensionsBatchCorrectly) {
  // Batches are same-n; interleaved dimensions must still all complete.
  EmbedService svc;
  for (int i = 0; i < 18; ++i) {
    const int n = 4 + i % 3;  // 4,5,6 interleaved
    const StarGraph g(n);
    ASSERT_TRUE(svc.submit(
        make_request(i, n, random_vertex_faults(g, i % 2, i), true)));
  }
  svc.drain();
  int count = 0;
  while (auto r = svc.next_response()) {
    EXPECT_EQ(r->status, ServiceStatus::kOk) << r->reason;
    ++count;
  }
  EXPECT_EQ(count, 18);
}

TEST(EmbedService, NonBlockingSubmitRejectsWhenFull) {
  // One-slot queue, one-request batches, and slow n=7 work: keep
  // stuffing without waiting until a rejection is observed.
  ServiceOptions opts;
  opts.queue_depth = 1;
  opts.batch_max = 1;
  EmbedService svc(opts);
  const StarGraph g(7);
  std::mt19937_64 rng(41);
  bool rejected = false;
  for (int i = 0; i < 64 && !rejected; ++i) {
    const FaultSet faults = random_vertex_faults(g, 4, rng());
    rejected = !svc.submit(make_request(i, 7, faults), nullptr,
                           /*wait=*/false);
  }
  EXPECT_TRUE(rejected) << "a one-deep queue never filled under load";
  svc.drain();
  while (svc.next_response()) {
  }
}

TEST(EmbedService, VerifyOnHitMarksResponsesVerified) {
  ServiceOptions opts;
  opts.verify_on_hit = true;
  EmbedService svc(opts);
  const StarGraph g(5);
  const FaultSet faults = random_vertex_faults(g, 1, /*seed=*/7);
  const ServiceResponse fresh = svc.process_now(make_request(1, 5, faults));
  ASSERT_EQ(fresh.status, ServiceStatus::kOk);
  EXPECT_FALSE(fresh.verified) << "misses only verify when asked";
  const ServiceResponse hit = svc.process_now(make_request(2, 5, faults));
  ASSERT_EQ(hit.status, ServiceStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.verified);
}

TEST(EmbedService, UnsupportedDimensionIsAnErrorNotACrash) {
  EmbedService svc;
  const ServiceResponse r = svc.process_now(make_request(1, 2, FaultSet{}));
  EXPECT_EQ(r.status, ServiceStatus::kError);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_TRUE(r.ring.empty());
}

TEST(EmbedService, TooManyFaultsReportsEmbedFailure) {
  // n - 2 vertex faults is outside the Theorem-1 guarantee; the
  // pipeline may fail, and the service must answer with kError rather
  // than a bogus ring.  (With n = 4 and 2 faults placed adjacent to
  // each other the 4-cycle-free structure makes failure reliable.)
  const int n = 4;
  const StarGraph g(n);
  EmbedService svc;
  FaultSet faults;
  // Fault every even permutation's first two: id and one neighbor.
  const Perm id = Perm::identity(n);
  faults.add_vertex(id);
  for (const Perm& q : neighbors(id)) faults.add_vertex(q);
  const ServiceResponse r = svc.process_now(make_request(1, n, faults));
  if (r.status == ServiceStatus::kOk) {
    const RingReport rep = verify_healthy_ring(g, faults, r.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
  } else {
    EXPECT_FALSE(r.reason.empty());
  }
}

TEST(CanonicalRingCache, LookupInsertAndEvictionBound) {
  CanonicalRingCache cache(/*capacity=*/8);  // 1 entry per shard
  EXPECT_EQ(cache.lookup("absent"), nullptr);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("key-" + std::to_string(i));
    cache.insert(keys.back(),
                 std::make_shared<const std::vector<VertexId>>(
                     std::vector<VertexId>{static_cast<VertexId>(i)}));
  }
  // Per-shard LRU keeps the total bounded by capacity.
  EXPECT_LE(cache.size(), 8u);
  // Whatever survived still resolves to its own value.
  int survivors = 0;
  for (int i = 0; i < 64; ++i) {
    if (auto p = cache.lookup(keys[i])) {
      ++survivors;
      ASSERT_EQ(p->size(), 1u);
      EXPECT_EQ((*p)[0], static_cast<VertexId>(i));
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(survivors), cache.size());
}

TEST(CanonicalRingCache, HitRefreshesLruPosition) {
  // Capacity 8 over 8 shards = 1 entry/shard, so two same-shard keys
  // evict each other; with a big per-shard budget a refreshed key
  // outlives later inserts.
  CanonicalRingCache cache(/*capacity=*/16);
  auto ring = [](VertexId v) {
    return std::make_shared<const std::vector<VertexId>>(
        std::vector<VertexId>{v});
  };
  cache.insert("a", ring(1));
  cache.insert("b", ring(2));
  EXPECT_NE(cache.lookup("a"), nullptr);  // refresh "a"
  // Re-insert refreshes rather than duplicating.
  cache.insert("a", ring(3));
  auto p = cache.lookup("a");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ((*p)[0], 3u);
  EXPECT_LE(cache.size(), 16u);
}

}  // namespace
}  // namespace starring
