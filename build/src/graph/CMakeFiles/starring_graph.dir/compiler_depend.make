# Empty compiler generated dependencies file for starring_graph.
# This may be replaced when dependencies are built.
