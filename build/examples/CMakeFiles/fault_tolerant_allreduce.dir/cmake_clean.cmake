file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_allreduce.dir/fault_tolerant_allreduce.cpp.o"
  "CMakeFiles/fault_tolerant_allreduce.dir/fault_tolerant_allreduce.cpp.o.d"
  "fault_tolerant_allreduce"
  "fault_tolerant_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
