file(REMOVE_RECURSE
  "libstarring_hypercube.a"
)
