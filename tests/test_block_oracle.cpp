// Unit tests for the in-block path oracle, including the Lemma 4
// reproduction: in S_4 with one vertex fault, a healthy path of length
// 4!-3 = 21 (22 vertices) exists between any two adjacent healthy
// vertices.
#include <gtest/gtest.h>

#include <bit>

#include "core/block_oracle.hpp"
#include "perm/permutation.hpp"

namespace starring {
namespace {

TEST(BlockOracle, GraphIs24VertexCubic) {
  BlockOracle oracle;
  const SmallGraph& g = oracle.graph();
  EXPECT_EQ(g.size(), 24);
  for (int v = 0; v < 24; ++v)
    EXPECT_EQ(std::popcount(g.neighbor_mask(v)), 3);
}

TEST(BlockOracle, LocalParityMatchesPermParity) {
  BlockOracle oracle;
  for (int k = 0; k < 24; ++k)
    EXPECT_EQ(oracle.local_parity(k),
              Perm::unrank(static_cast<VertexId>(k), 4).parity());
}

TEST(BlockOracle, HamiltonianPathBetweenOppositeParity) {
  // S_4 is Hamiltonian-laceable: a 24-vertex path joins every pair of
  // opposite-parity vertices.  Exhaustive over all pairs.
  BlockOracle oracle;
  for (int a = 0; a < 24; ++a) {
    for (int b = 0; b < 24; ++b) {
      if (a == b) continue;
      if (oracle.local_parity(a) == oracle.local_parity(b)) continue;
      const auto p = oracle.find_path(a, b, 0, 24);
      EXPECT_TRUE(p.has_value()) << a << "->" << b;
    }
  }
}

TEST(BlockOracle, NoHamiltonianPathSameParity) {
  // 23 edges flip parity 23 times: same-parity endpoints are impossible.
  BlockOracle oracle;
  for (int a = 0; a < 24; a += 5) {
    for (int b = 0; b < 24; ++b) {
      if (a == b || oracle.local_parity(a) != oracle.local_parity(b))
        continue;
      EXPECT_FALSE(oracle.find_path(a, b, 0, 24).has_value());
    }
  }
}

TEST(BlockOracle, Lemma4AllFaultsAllAdjacentPairs) {
  // The paper's Lemma 4 in full: for every faulty vertex f and every
  // adjacent healthy pair (u, v), a healthy u-v path of exactly 22
  // vertices exists.
  BlockOracle oracle;
  const SmallGraph& g = oracle.graph();
  for (int f = 0; f < 24; ++f) {
    const std::uint32_t forbidden = 1u << f;
    for (int u = 0; u < 24; ++u) {
      if (u == f) continue;
      std::uint64_t nbrs = g.neighbor_mask(u);
      while (nbrs) {
        const int v = std::countr_zero(nbrs);
        nbrs &= nbrs - 1;
        if (v == f) continue;
        const auto p = oracle.find_path(u, v, forbidden, 22);
        EXPECT_TRUE(p.has_value())
            << "fault " << f << " pair " << u << "," << v;
        if (p) {
          EXPECT_EQ(p->size(), 22u);
          for (int x : *p) EXPECT_NE(x, f);
        }
      }
    }
  }
}

TEST(BlockOracle, Lemma4IsTightForAdjacentPairs) {
  // Lemma 4's length is maximal: between ADJACENT healthy vertices no
  // healthy path longer than 22 vertices exists once a vertex is faulty
  // (24 needs the fault; 23 needs same-parity endpoints, but adjacent
  // vertices have opposite parity).
  BlockOracle oracle;
  const SmallGraph& g = oracle.graph();
  const std::uint32_t forbidden = 1u << 7;
  for (int u = 0; u < 24; ++u) {
    if (u == 7) continue;
    std::uint64_t nbrs = g.neighbor_mask(u);
    while (nbrs) {
      const int v = std::countr_zero(nbrs);
      nbrs &= nbrs - 1;
      if (v == 7 || v < u) continue;
      EXPECT_FALSE(oracle.find_path(u, v, forbidden, 24).has_value());
      EXPECT_FALSE(oracle.find_path(u, v, forbidden, 23).has_value());
    }
  }
}

TEST(BlockOracle, AlmostHamiltonianPathsExistOffTheRing) {
  // The flip side (why tightness needs the adjacency restriction):
  // between suitable NON-adjacent same-parity endpoints, a healthy
  // 23-vertex path (all healthy vertices) does exist.
  BlockOracle oracle;
  const std::uint32_t forbidden = 1u << 7;
  const int fault_parity = oracle.local_parity(7);
  int found = 0;
  for (int u = 0; u < 24 && found == 0; ++u) {
    if (u == 7 || oracle.local_parity(u) == fault_parity) continue;
    for (int v = u + 1; v < 24; ++v) {
      if (v == 7 || oracle.local_parity(v) == fault_parity) continue;
      if (oracle.find_path(u, v, forbidden, 23)) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GT(found, 0);
}

TEST(BlockOracle, TargetParityInfeasible) {
  // An even vertex count needs opposite-parity endpoints.
  BlockOracle oracle;
  int a = 0;
  int b = -1;
  for (int k = 1; k < 24; ++k)
    if (oracle.local_parity(k) == oracle.local_parity(a)) {
      b = k;
      break;
    }
  ASSERT_NE(b, -1);
  EXPECT_FALSE(oracle.find_path(a, b, 0, 22).has_value());
}

TEST(BlockOracle, RemovedEdgesAreAvoided) {
  BlockOracle oracle;
  const SmallGraph& g = oracle.graph();
  // Remove one edge on some Hamiltonian path and ask again.
  int a = 0;
  int b = -1;
  for (int k = 1; k < 24; ++k)
    if (oracle.local_parity(k) != oracle.local_parity(0)) {
      b = k;
      break;
    }
  const auto p = oracle.find_path(a, b, 0, 24);
  ASSERT_TRUE(p.has_value());
  const std::pair<int, int> removed{(*p)[0], (*p)[1]};
  const auto q = oracle.find_path(a, b, 0, 24, {{removed}});
  if (q) {
    for (std::size_t i = 0; i + 1 < q->size(); ++i) {
      const bool uses = ((*q)[i] == removed.first && (*q)[i + 1] == removed.second) ||
                        ((*q)[i] == removed.second && (*q)[i + 1] == removed.first);
      EXPECT_FALSE(uses);
    }
  }
  (void)g;
}

TEST(BlockOracle, CacheCountsHitsAndMisses) {
  // The path cache is process-wide; start from a clean slate so the
  // first query is a guaranteed miss even when other tests ran first.
  BlockOracle::clear_cache();
  BlockOracle oracle;
  const auto m0 = oracle.cache_misses();
  (void)oracle.find_path(0, 1, 0, 24);
  EXPECT_EQ(oracle.cache_misses(), m0 + 1);
  const auto h0 = oracle.cache_hits();
  (void)oracle.find_path(0, 1, 0, 24);
  EXPECT_EQ(oracle.cache_hits(), h0 + 1);
}

TEST(BlockOracle, CacheSharedAcrossInstances) {
  BlockOracle::clear_cache();
  BlockOracle first;
  (void)first.find_path(2, 5, 0, 24);
  BlockOracle second;
  const auto h0 = second.cache_hits();
  (void)second.find_path(2, 5, 0, 24);
  EXPECT_EQ(second.cache_hits(), h0 + 1);
  EXPECT_EQ(second.cache_misses(), 0u);
}

TEST(BlockOracle, PrewarmMakesFaultFreeQueriesHits) {
  BlockOracle::clear_cache();
  BlockOracle::prewarm_fault_free();
  BlockOracle oracle;
  for (int a = 0; a < 24; ++a)
    for (int b = 0; b < 24; ++b) {
      if (a == b) continue;
      (void)oracle.find_path(a, b, 0, 24);
    }
  EXPECT_EQ(oracle.cache_misses(), 0u);
  EXPECT_EQ(oracle.cache_hits(), 24u * 23u);
  // Idempotent: a second prewarm is a no-op.
  BlockOracle::prewarm_fault_free();
}

TEST(BlockOracle, ReturnedPathsAreValid) {
  BlockOracle oracle;
  const SmallGraph& g = oracle.graph();
  const std::uint32_t forbidden = (1u << 3) | (1u << 17);
  for (int b = 0; b < 24; ++b) {
    if (b == 0 || ((forbidden >> b) & 1u)) continue;
    for (int target : {20, 18}) {
      const auto p = oracle.find_path(0, b, forbidden, target);
      if (!p) continue;
      EXPECT_EQ(static_cast<int>(p->size()), target);
      for (std::size_t i = 0; i + 1 < p->size(); ++i)
        EXPECT_TRUE(g.has_edge((*p)[i], (*p)[i + 1]));
      std::uint32_t seen = 0;
      for (int x : *p) {
        EXPECT_FALSE((forbidden >> x) & 1u);
        EXPECT_FALSE((seen >> x) & 1u);
        seen |= 1u << x;
      }
    }
  }
}

}  // namespace
}  // namespace starring
