#include "cluster/router.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "util/backoff.hpp"

namespace starring::cluster {

ShardRouter::ShardRouter(std::shared_ptr<const ShardMap> map,
                         BreakerOptions opts)
    : map_(std::move(map)), opts_(opts) {
  if (!map_) map_ = std::make_shared<const ShardMap>();
}

ShardRouter::ShardRouter(ShardMap map, BreakerOptions opts)
    : ShardRouter(std::make_shared<const ShardMap>(std::move(map)), opts) {}

std::shared_ptr<const ShardMap> ShardRouter::map() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

void ShardRouter::swap_map(std::shared_ptr<const ShardMap> next) {
  if (!next) return;
  const std::lock_guard<std::mutex> lock(mu_);
  map_ = std::move(next);
  for (auto it = breakers_.begin(); it != breakers_.end();) {
    if (map_->find(it->first) == nullptr) {
      // Departed shard: zero its gauges and forget the streak.
      publish_locked(it->first, nullptr, Clock::time_point{});
      it = breakers_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ShardRouter::allow_locked(const Breaker& b,
                               Clock::time_point now) const {
  return !b.open || now >= b.retry_at;
}

void ShardRouter::publish_locked(int shard_id, const Breaker* b,
                                 Clock::time_point now) const {
  int state = static_cast<int>(BreakerState::kClosed);
  int streak = 0;
  if (b != nullptr) {
    streak = b->failures;
    if (b->open)
      state = static_cast<int>(now >= b->retry_at ? BreakerState::kHalfOpen
                                                  : BreakerState::kOpen);
  }
  const std::string prefix =
      "cluster.shard." + std::to_string(shard_id) + ".breaker_";
  obs::counter(prefix + "state").set(state);
  obs::counter(prefix + "streak").set(streak);
}

std::vector<int> ShardRouter::candidates(std::string_view key,
                                         Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> order = map_->all_candidates(key);
  // Stable partition: preference order inside each group is still the
  // map's nearest-first order, open-breaker shards are last-resort
  // rather than absent.
  std::stable_partition(order.begin(), order.end(), [&](int id) {
    const auto it = breakers_.find(id);
    if (it == breakers_.end()) return true;
    // Open breakers are the rare case; keeping their state gauge live
    // here is what makes the open -> half-open flip observable without
    // a request-side event.
    if (it->second.open) publish_locked(id, &it->second, now);
    return allow_locked(it->second, now);
  });
  return order;
}

bool ShardRouter::allow(int shard_id, Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  return it == breakers_.end() || allow_locked(it->second, now);
}

void ShardRouter::record_failure(int shard_id, Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = breakers_[shard_id];
  ++b.failures;
  if (b.failures >= opts_.open_threshold) {
    // Cooldown grows with the streak past the threshold: a shard that
    // keeps failing its half-open probes is probed less and less often
    // (up to cap_ms).
    const int round = b.failures - opts_.open_threshold + 1;
    b.open = true;
    b.retry_at = now + std::chrono::milliseconds(retry_backoff_ms(
                           round, opts_.base_ms, opts_.cap_ms));
  }
  publish_locked(shard_id, &b, now);
}

void ShardRouter::record_success(int shard_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  if (it != breakers_.end()) breakers_.erase(it);
  publish_locked(shard_id, nullptr, Clock::time_point{});
}

int ShardRouter::consecutive_failures(int shard_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  return it == breakers_.end() ? 0 : it->second.failures;
}

BreakerState ShardRouter::breaker_state(int shard_id,
                                        Clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = breakers_.find(shard_id);
  if (it == breakers_.end() || !it->second.open)
    return BreakerState::kClosed;
  return now >= it->second.retry_at ? BreakerState::kHalfOpen
                                    : BreakerState::kOpen;
}

}  // namespace starring::cluster
