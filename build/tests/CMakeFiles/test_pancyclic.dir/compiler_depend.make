# Empty compiler generated dependencies file for test_pancyclic.
# This may be replaced when dependencies are built.
