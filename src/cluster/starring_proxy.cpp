// starring-proxy — thin cluster router in front of sharded starringd.
//
// Speaks starring-request/starring-response v1 on both sides.  For
// each embedding request it canonicalizes the fault set
// (service/canonical), hashes the canonical class key onto the shard
// map's consistent-hash ring, and forwards to the owner shard.  On
// connect/write/read failure — or a `status timeout` from the shard —
// it retries the next replica; per-shard circuit breakers
// (cluster/router.hpp) keep a dead shard from taxing every request
// with a connect timeout, while still leaving it in every candidate
// list as a last resort, so a request always reaches some terminal
// status.  Exhausting every shard answers `status rejected` with
// reason "no live shard" — terminal and retryable, like a queue-full
// bounce.
//
// Read-through replication: the proxy counts ok-served canonical
// classes; when one crosses --seed-threshold it pushes the canonical
// ring to the class's replica shards as `starring-seed v1` records
// (EmbedService::seed_cache on the far side), so a failover lands on a
// warm cache instead of recomputing.
//
// Membership is live (cluster/membership.hpp): the proxy participates
// in the SWIM gossip as an observer (shard -1), bootstrapped either
// from a static map file (--shard-map) or by joining a running member
// (--join HOST:PORT).  Each confirmed join/leave/death swaps the
// router's map snapshot atomically (RCU-style shared_ptr, epoch
// bumped); in-flight retries re-fetch candidates per attempt so they
// re-route against the new owner set; and on ownership growth the
// seeder drives seed handoff — hot classes' canonical rings are pushed
// to their new replicas before those take cold misses.
//
// A health poller sends the bare `HEALTH` line to every shard each
// --health-interval-ms: a dead shard trips its breaker between data-
// path requests, a recovered one closes it, and an identity mismatch
// (a process serving under the wrong shard id) is logged and counted.
// Per-shard polls are jittered (±25% plus a per-shard initial stagger)
// so N shards never land on one tick and a slow shard cannot delay
// detection of the others in its round.
//
// The proxy answers STATS (its own cluster.* registry, including
// per-shard latency histograms cluster.shard.<id>.latency.*), PING,
// FAIL (local failpoints: proxy.forward fails a request before any
// forward, proxy.upstream fails individual forward attempts — the
// chaos tests storm these), and HEALTH (shard -1, the map's epoch).
// Client-side transport, accept hardening, and drain semantics match
// starringd (util/net.hpp).
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <poll.h>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "obs/bench_io.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "service/canonical.hpp"
#include "util/failpoint.hpp"
#include "util/io.hpp"
#include "util/net.hpp"

namespace starring::cluster {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

// Process start, for the proxy's own HEALTH uptime_ms.
const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

const char* status_name(ServiceStatus s) {
  switch (s) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kError: return "error";
    case ServiceStatus::kRejected: return "rejected";
    case ServiceStatus::kTimeout: return "timeout";
    case ServiceStatus::kThrottled: return "throttled";
  }
  return "?";
}

struct ProxyConfig {
  std::string shard_map_path;
  /// Non-empty: bootstrap by joining this cluster member instead of
  /// reading a map file (mutually exclusive with --shard-map).
  std::string join_addr;
  /// SWIM tuning, forwarded to MembershipOptions.
  int gossip_interval_ms = 250;
  int suspicion_timeout_ms = 1500;
  int listen_port = -1;
  int max_conns = 64;
  int write_timeout_ms = 5000;
  /// Budget for one upstream exchange (connect + request + response);
  /// a shard that cannot answer within it counts as failed and the
  /// request fails over.
  int upstream_timeout_ms = 10000;
  int drain_timeout_ms = 10000;
  /// Health-poll period; 0 disables the poller (data-path failures
  /// still drive the breakers).
  int health_interval_ms = 1000;
  /// Ok-served responses of one canonical class before its ring is
  /// pushed to the replicas; 0 disables replication seeding.
  int seed_threshold = 3;
  /// Slow-request flight recorder: a request whose proxy-side handling
  /// exceeds this retains its span tree, attempt list, and status in a
  /// bounded ring (0 = recorder off).
  int slow_ms = 0;
  /// Slow requests retained before the oldest is dropped.
  int slow_keep = 32;
  std::string bench_artifact;
  /// Non-empty: enable tracing and, on clean exit, pull TRACE from
  /// every shard and write one merged Chrome/Perfetto file here.
  std::string trace_out;
};

/// One cached upstream connection (blocking-looking iostreams over a
/// non-blocking fd with bounded reads/writes).
struct UpstreamConn {
  int fd;
  net::FdInBuf in_buf;
  net::FdOutBuf out_buf;
  std::istream in;
  std::ostream out;

  UpstreamConn(int fd_, int read_timeout_ms, int write_timeout_ms)
      : fd(fd_),
        in_buf(fd_, read_timeout_ms),
        out_buf(fd_, write_timeout_ms, nullptr),
        in(&in_buf),
        out(&out_buf) {}
  ~UpstreamConn() { ::close(fd); }
  UpstreamConn(const UpstreamConn&) = delete;
  UpstreamConn& operator=(const UpstreamConn&) = delete;
};

/// Per-client-thread pool of upstream connections, one per shard,
/// created lazily and dropped on any failure (the next attempt
/// reconnects).  Not shared across client threads: each gets its own
/// upstream sockets, so responses never interleave.  The resolving map
/// is passed per call — membership swaps maps under the pool, and a
/// shard that rejoined at a new endpoint must get a fresh dial, not a
/// socket to its previous life.
class UpstreamPool {
 public:
  UpstreamPool(int upstream_timeout_ms, int write_timeout_ms)
      : read_timeout_ms_(upstream_timeout_ms),
        write_timeout_ms_(write_timeout_ms) {}

  /// `created`, when non-null, reports whether this call had to dial a
  /// fresh connection (the tracer gives only those an upstream_connect
  /// span).
  UpstreamConn* get(const ShardMap& map, int shard_id,
                    bool* created = nullptr) {
    if (created != nullptr) *created = false;
    const ShardInfo* info = map.find(shard_id);
    if (info == nullptr) return nullptr;
    const std::string ep = net::to_string(info->endpoint);
    const auto it = conns_.find(shard_id);
    if (it != conns_.end()) {
      if (it->second.endpoint == ep) return it->second.conn.get();
      conns_.erase(it);  // shard id reborn elsewhere
    }
    const int fd = net::connect_endpoint(info->endpoint, /*nonblocking=*/true);
    if (fd < 0) return nullptr;
    auto conn = std::make_unique<UpstreamConn>(fd, read_timeout_ms_,
                                               write_timeout_ms_);
    UpstreamConn* raw = conn.get();
    conns_[shard_id] = Slot{ep, std::move(conn)};
    if (created != nullptr) *created = true;
    return raw;
  }

  void drop(int shard_id) { conns_.erase(shard_id); }

 private:
  struct Slot {
    std::string endpoint;
    std::unique_ptr<UpstreamConn> conn;
  };

  int read_timeout_ms_;
  int write_timeout_ms_;
  std::map<int, Slot> conns_;
};

/// Read-through replication: count ok-served canonical classes and,
/// at the threshold, push the canonical ring to the class's replicas
/// from a background worker (a slow replica must not add latency to
/// the data path).
///
/// Hot classes keep their canonical ring after seeding, which is what
/// makes *seed handoff* possible: when membership adds a shard (join,
/// or a rejoin at a new endpoint) the proxy calls handle_map_change()
/// and every hot class whose replica set now includes a shard it never
/// seeded gets a warm-up push — the new owner serves hits instead of
/// taking cold misses.  FAILPOINT("cluster.handoff") suppresses the
/// handoff pass (chaos drills verify the cold-path fallback).
class Seeder {
 public:
  Seeder(ShardRouter& router, int threshold, int upstream_timeout_ms)
      : router_(router),
        threshold_(threshold),
        timeout_ms_(upstream_timeout_ms),
        worker_([this] { run(); }) {}

  ~Seeder() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  /// Note an ok response for canonical class `key` served by
  /// `served_by`.  `ring` is in the *canonical* frame (the caller
  /// relabels before handing it over).  Crossing the threshold retains
  /// the ring and enqueues one seed push to every replica except the
  /// server.
  void note_ok(const std::string& key, int n, std::vector<VertexId> ring,
               const std::vector<int>& replica_ids, int served_by) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      // Bounded tracker: losing the state on overflow only delays
      // re-seeding, which is idempotent anyway.
      if (classes_.size() > kMaxTracked) classes_.clear();
      Hot& h = classes_[key];
      if (h.seeded) return;
      if (++h.count < threshold_) return;
      h.seeded = true;
      h.n = n;
      h.ring = std::move(ring);
      h.seeded_to.push_back(served_by);  // the server has it by definition
      std::vector<int> targets;
      for (const int id : replica_ids)
        if (id != served_by) {
          targets.push_back(id);
          h.seeded_to.push_back(id);
        }
      if (targets.empty()) return;
      jobs_.push_back(Job{key, n, h.ring, std::move(targets)});
    }
    cv_.notify_one();
  }

  /// Seed handoff: the map changed (join/rejoin) — push every hot
  /// class's retained ring to replicas it has never been seeded to.
  void handle_map_change(const std::shared_ptr<const ShardMap>& map) {
    if (FAILPOINT("cluster.handoff")) {
      obs::counter("cluster.handoffs_suppressed").add();
      return;
    }
    std::size_t queued = 0;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (auto& [key, h] : classes_) {
        if (!h.seeded) continue;
        std::vector<int> targets;
        for (const int id : map->replicas(key)) {
          if (std::find(h.seeded_to.begin(), h.seeded_to.end(), id) ==
              h.seeded_to.end()) {
            targets.push_back(id);
            h.seeded_to.push_back(id);
          }
        }
        if (targets.empty()) continue;
        queued += targets.size();
        jobs_.push_back(Job{key, h.n, h.ring, std::move(targets)});
      }
    }
    if (queued > 0) {
      obs::counter("cluster.handoff_seeds").add(
          static_cast<std::int64_t>(queued));
      cv_.notify_one();
    }
  }

  /// A shard died: its cache is gone, so hot classes must qualify for
  /// re-seeding when that id returns.
  void forget_shard(int shard_id) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, h] : classes_) {
      auto& v = h.seeded_to;
      v.erase(std::remove(v.begin(), v.end(), shard_id), v.end());
    }
  }

  /// Drop the seeded-marker for every class (a killed shard's replicas
  /// may themselves have died; tests re-arm via this).  Cheap, so the
  /// health poller calls it whenever a shard transitions to dead.
  void forget_seeded() {
    const std::lock_guard<std::mutex> lock(mu_);
    classes_.clear();
  }

 private:
  /// One canonical class's seeding state.  The ring is retained after
  /// the threshold so handoff never needs the data path.
  struct Hot {
    int n = 0;
    int count = 0;
    bool seeded = false;
    std::vector<VertexId> ring;
    std::vector<int> seeded_to;
  };
  struct Job {
    std::string key;
    int n;
    std::vector<VertexId> ring;
    std::vector<int> targets;
  };

  void run() {
    while (true) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ and drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      for (const int id : job.targets) push(job, id);
    }
  }

  void push(const Job& job, int shard_id) {
    // Seeding is background work with no originating request context:
    // each push roots its own little trace.  The target endpoint is
    // resolved against the map *now*, not at enqueue time — the shard
    // may have moved while the job sat in the queue.
    obs::trace::ScopedSpan span("proxy.seed");
    const std::shared_ptr<const ShardMap> map = router_.map();
    const ShardInfo* info = map->find(shard_id);
    if (info == nullptr) return;
    const int fd = net::connect_endpoint(info->endpoint, /*nonblocking=*/true);
    if (fd < 0) {
      obs::counter("cluster.seed_failures").add();
      return;
    }
    UpstreamConn conn(fd, timeout_ms_, timeout_ms_);
    ServiceRequest seed;
    seed.kind = RequestKind::kSeed;
    seed.n = job.n;
    seed.seed_key = job.key;
    seed.seed_ring = job.ring;
    write_request(conn.out, seed);
    conn.out.flush();
    std::string line;
    std::string word;
    if (conn.out.good() && (conn.in >> word >> line) && word == "SEED" &&
        line == "ok") {
      obs::counter("cluster.seeds_sent").add();
    } else {
      obs::counter("cluster.seed_failures").add();
    }
  }

  static constexpr std::size_t kMaxTracked = 8192;

  ShardRouter& router_;
  const int threshold_;
  const int timeout_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Hot> classes_;
  std::deque<Job> jobs_;
  bool stop_ = false;
  std::thread worker_;
};

/// What one forward_embed call did, for the slow-request recorder: the
/// proxy-side trace id (0 while tracing is off) and every shard
/// attempt with its outcome.
struct ForwardAttempt {
  int shard = -1;
  const char* outcome = "";
  double ms = 0.0;
};
struct ForwardReport {
  std::uint64_t trace_id = 0;
  std::vector<ForwardAttempt> attempts;
};

/// Slow-request flight recorder: a bounded ring of the last K requests
/// that exceeded --slow-ms, each retaining its terminal status, shard
/// attempt list, and (when tracing is on) the proxy-side span tree of
/// its trace.  Answered by the bare SLOW command and dumped to stderr
/// at clean exit.  Capturing a record drains the span rings — fine,
/// because only past-threshold requests pay it.
class SlowRecorder {
 public:
  SlowRecorder(int threshold_ms, std::size_t keep)
      : threshold_ms_(threshold_ms),
        keep_(std::max<std::size_t>(1, keep)),
        count_(obs::counter("proxy.slow_requests")) {}

  int threshold_ms() const { return threshold_ms_; }

  void note(const ServiceRequest& req, const ServiceResponse& resp,
            const ForwardReport& rep, double total_ms) {
    count_.add();
    Record r;
    r.request_id = req.id;
    r.tenant = req.tenant.empty() ? "default" : req.tenant;
    r.trace_id = rep.trace_id;
    r.total_ms = total_ms;
    r.status = status_name(resp.status);
    r.attempts = rep.attempts;
    if (rep.trace_id != 0) {
      for (obs::trace::SpanRecord& s : obs::trace::collect())
        if (s.trace_id == rep.trace_id) r.spans.push_back(std::move(s));
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(std::move(r));
    if (ring_.size() > keep_) ring_.pop_front();
  }

  /// Text report, oldest record first (the SLOW answer rides the
  /// starring-stats framing; the exit dump goes to stderr verbatim).
  std::string render() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "# slow requests: " << ring_.size() << " retained (threshold "
       << threshold_ms_ << " ms, keep " << keep_ << ")\n";
    for (const Record& r : ring_) {
      os << "slow id=" << r.request_id << " tenant=" << r.tenant
         << " status=" << r.status << " ms=" << r.total_ms << " trace="
         << r.trace_id << " attempts=" << r.attempts.size() << "\n";
      for (const ForwardAttempt& a : r.attempts)
        os << "  attempt shard=" << a.shard << " outcome=" << a.outcome
           << " ms=" << a.ms << "\n";
      for (const obs::trace::SpanRecord& s : r.spans)
        os << "  span " << s.name << " id=" << s.span_id << " parent="
           << s.parent_id << " dur_us=" << s.dur_ns / 1000 << "\n";
    }
    return os.str();
  }

 private:
  struct Record {
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;
    std::string tenant;
    double total_ms = 0.0;
    const char* status = "";
    std::vector<ForwardAttempt> attempts;
    std::vector<obs::trace::SpanRecord> spans;
  };

  const int threshold_ms_;
  const std::size_t keep_;
  obs::Counter& count_;
  mutable std::mutex mu_;
  std::deque<Record> ring_;
};

struct ProxyCtx {
  ProxyConfig cfg;
  /// The proxy's SWIM participant (observer, shard -1).  Owns the
  /// authoritative membership view; the router holds its latest map.
  std::unique_ptr<MembershipAgent> agent;
  ShardRouter router;
  std::unique_ptr<Seeder> seeder;  // null: seeding disabled
  std::unique_ptr<SlowRecorder> slow;  // null: recorder disabled
  /// Embedding forwards currently in flight (the proxy HEALTH probe
  /// reports this as `inflight`).
  std::atomic<std::int64_t> inflight{0};

  ProxyCtx(ProxyConfig cfg_, std::unique_ptr<MembershipAgent> agent_)
      : cfg(std::move(cfg_)),
        agent(std::move(agent_)),
        router(agent->map()) {
    // Seeding no longer requires replication > 1 at boot: a cluster
    // that bootstraps single-node grows its replica sets live, and the
    // handoff path needs the hot-class rings retained from day one.
    if (cfg.seed_threshold > 0)
      seeder = std::make_unique<Seeder>(router, cfg.seed_threshold,
                                        cfg.upstream_timeout_ms);
    if (cfg.slow_ms > 0)
      slow = std::make_unique<SlowRecorder>(
          cfg.slow_ms, static_cast<std::size_t>(cfg.slow_keep));
  }

  /// Per-shard forward latency histogram, created on first use —
  /// membership means the shard set is not known at startup.  The
  /// generic histogram folding in obs/prometheus renders these as
  /// cluster.shard.<id>.latency quantiles for free.
  obs::LatencyHistogram& latency_for(int shard_id) {
    const std::lock_guard<std::mutex> lock(latency_mu_);
    auto& slot = latency_[shard_id];
    if (!slot)
      slot = std::make_unique<obs::LatencyHistogram>(
          "cluster.shard." + std::to_string(shard_id) + ".latency");
    return *slot;
  }

 private:
  std::mutex latency_mu_;
  std::map<int, std::unique_ptr<obs::LatencyHistogram>> latency_;
};

/// Forward one embedding request, failing over across the candidate
/// list.  Always returns a terminal response.  `rep`, when non-null,
/// receives the trace id and attempt list for the slow-request
/// recorder.
ServiceResponse forward_embed(const ServiceRequest& req, ProxyCtx& ctx,
                              UpstreamPool& pool,
                              ForwardReport* rep = nullptr) {
  obs::counter("cluster.requests").add();
  ctx.inflight.fetch_add(1, std::memory_order_relaxed);
  struct InflightGuard {
    std::atomic<std::int64_t>& n;
    ~InflightGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard{ctx.inflight};
  // The request's proxy-side root span.  The explicit parent adopts a
  // client-originated wire trace (starring-cli --trace); invalid when
  // the request carried none, which roots a fresh trace here.
  obs::trace::ScopedSpan root(
      "proxy.request",
      obs::trace::Context{req.trace_id, req.parent_span_id});
  if (rep != nullptr) rep->trace_id = root.context().trace_id;
  CanonicalForm canon;
  {
    obs::trace::ScopedSpan span("proxy.canonicalize");
    canon = canonicalize(req.n, req.faults);
  }
  std::vector<int> cands;
  {
    obs::trace::ScopedSpan span("proxy.route");
    cands = ctx.router.candidates(canon.key, ShardRouter::Clock::now());
  }

  const auto fail_with = [&](ServiceStatus status, const char* reason) {
    ServiceResponse r;
    r.id = req.id;
    r.status = status;
    r.reason = reason;
    return r;
  };

  if (FAILPOINT("proxy.forward"))
    return fail_with(ServiceStatus::kError, "failpoint proxy.forward");

  std::optional<ServiceResponse> shard_timeout;
  std::vector<int> tried;
  while (true) {
    // After the first attempt, re-fetch candidates: membership may
    // have swapped the map mid-request, and the retry must route
    // against the new owner set (a confirmed-dead shard is gone, a
    // freshly joined one is eligible).  `tried` keeps the walk finite
    // and ensures no shard eats two attempts of the same request.
    if (!tried.empty())
      cands = ctx.router.candidates(canon.key, ShardRouter::Clock::now());
    int sid = -1;
    for (const int c : cands)
      if (std::find(tried.begin(), tried.end(), c) == tried.end()) {
        sid = c;
        break;
      }
    if (sid < 0) break;
    tried.push_back(sid);
    const std::shared_ptr<const ShardMap> map = ctx.router.map();
    const auto now = ShardRouter::Clock::now();
    const auto att_t0 = std::chrono::steady_clock::now();
    const auto note_attempt = [&](const char* outcome) {
      if (rep != nullptr)
        rep->attempts.push_back(ForwardAttempt{
            sid, outcome,
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - att_t0)
                .count()});
    };
    // Marker span for an abandoned attempt, parented under the request
    // root, so a failover request's tree shows each bounce explicitly.
    const auto note_failover = [&] {
      if (root.context().valid())
        obs::trace::emit("proxy.failover", root.context().trace_id,
                         obs::trace::new_span_id(),
                         root.context().span_id, att_t0,
                         std::chrono::steady_clock::now());
    };
    // One span per attempt; the serving shard rides in the name
    // (SpanRecord carries no args).  snprintf, not std::string: the
    // disabled path must stay allocation-free.
    char fname[24];
    std::snprintf(fname, sizeof fname, "proxy.forward.s%d", sid);
    obs::trace::ScopedSpan fspan(fname, root.context());
    if (FAILPOINT("proxy.upstream")) {
      // Chaos stands in for a dead upstream: same bookkeeping, same
      // failover path.
      ctx.router.record_failure(sid, now);
      obs::counter("cluster.upstream_failures").add();
      note_attempt("failpoint");
      note_failover();
      continue;
    }
    bool fresh = false;
    const auto conn_t0 = std::chrono::steady_clock::now();
    UpstreamConn* conn = pool.get(*map, sid, &fresh);
    if (fresh && fspan.context().valid())
      obs::trace::emit("proxy.upstream_connect",
                       fspan.context().trace_id, obs::trace::new_span_id(),
                       fspan.context().span_id, conn_t0,
                       std::chrono::steady_clock::now());
    if (conn == nullptr) {
      ctx.router.record_failure(sid, now);
      obs::counter("cluster.connect_failures").add();
      note_attempt("connect_fail");
      note_failover();
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    // Forward with this attempt's span as the parent, so the shard's
    // svc.request root stitches under proxy.forward.s<id> in the
    // merged trace.  Without a proxy-side span the client's context
    // (if any) passes through untouched.
    ServiceRequest fwd_storage;
    const ServiceRequest* fwd = &req;
    if (fspan.context().valid()) {
      fwd_storage = req;
      fwd_storage.trace_id = fspan.context().trace_id;
      fwd_storage.parent_span_id = fspan.context().span_id;
      fwd = &fwd_storage;
    }
    write_request(conn->out, *fwd);
    conn->out.flush();
    if (!conn->out.good()) {
      pool.drop(sid);
      ctx.router.record_failure(sid, ShardRouter::Clock::now());
      obs::counter("cluster.write_failures").add();
      note_attempt("write_fail");
      note_failover();
      continue;
    }
    std::string err;
    const auto resp = read_response(conn->in, &err);
    if (!resp || resp->id != req.id) {
      // EOF, a wedged shard (bounded read expired), a malformed frame,
      // or a response for someone else: the connection is unusable.
      pool.drop(sid);
      ctx.router.record_failure(sid, ShardRouter::Clock::now());
      obs::counter("cluster.read_failures").add();
      note_attempt("read_fail");
      note_failover();
      continue;
    }
    ctx.router.record_success(sid);
    ctx.latency_for(sid).record(std::chrono::steady_clock::now() - t0);
    obs::counter("cluster.forwarded").add();

    if (resp->status == ServiceStatus::kTimeout) {
      // The shard is alive but missed the request's budget; a replica
      // with the class cached may still make it.  Keep the timeout as
      // the answer of last resort.
      obs::counter("cluster.upstream_timeouts").add();
      note_attempt("timeout");
      note_failover();
      shard_timeout = *resp;
      continue;
    }
    if (tried.size() > 1) obs::counter("cluster.failover").add();
    if (resp->status == ServiceStatus::kOk) {
      note_attempt(resp->cache_hit ? "ok_hit" : "ok_miss");
      obs::counter(resp->cache_hit ? "cluster.cache_hits"
                                   : "cluster.cache_misses")
          .add();
      if (ctx.seeder) {
        // The response ring is in the caller's frame; replicas cache
        // by canonical key, so hand the seeder the canonical-frame
        // ring (exactly inverse to the shard's finish() relabel).
        ctx.seeder->note_ok(canon.key, req.n,
                            relabel_ring(resp->ring, canon.to_canonical,
                                         req.n),
                            map->replicas(canon.key), sid);
      }
    } else {
      note_attempt(status_name(resp->status));
    }
    return *resp;
  }
  if (shard_timeout) return *shard_timeout;
  obs::counter("cluster.no_shard").add();
  return fail_with(ServiceStatus::kRejected, "no live shard");
}

// --- client side ------------------------------------------------------

/// Serve one client connection: requests are handled serially (the
/// proxy holds no embedding state, so per-request concurrency belongs
/// to the client opening more connections, which is what starring-load
/// does — one per tenant).
void serve_client(int fd, ProxyCtx& ctx, net::ConnRegistry& reg) {
  std::atomic<bool> dead{false};
  net::FdInBuf in_buf(fd);
  net::FdOutBuf out_buf(fd, ctx.cfg.write_timeout_ms, &dead);
  std::istream in(&in_buf);
  std::ostream out(&out_buf);
  UpstreamPool pool(ctx.cfg.upstream_timeout_ms, ctx.cfg.write_timeout_ms);

  std::string err;
  while (!dead.load(std::memory_order_relaxed)) {
    auto req = read_request(in, &err);
    if (!req) {
      if (!err.empty() && !dead.load(std::memory_order_relaxed)) {
        ServiceResponse bad;
        bad.status = ServiceStatus::kError;
        bad.reason = "parse: " + err;
        write_response(out, bad);
        out.flush();
      }
      break;
    }
    if (req->kind == RequestKind::kStats) {
      write_stats(out, obs::render_prometheus());
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kPing) {
      out << "PONG\n";
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kFail) {
      std::string why;
      const bool ok = failpoint::set(req->fail_config, &why);
      if (ok)
        out << "FAIL ok\n";
      else
        out << "FAIL bad "
            << (why.empty() ? std::string("failpoints unavailable") : why)
            << "\n";
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kHealth) {
      HealthInfo h;
      h.shard_id = -1;  // a router, not a shard
      h.epoch = ctx.router.map()->epoch();
      h.cache_entries = 0;
      h.cache_hits = static_cast<std::uint64_t>(
          obs::counter("cluster.cache_hits").value());
      h.cache_misses = static_cast<std::uint64_t>(
          obs::counter("cluster.cache_misses").value());
      h.uptime_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - g_start)
              .count());
      const std::int64_t inflight =
          ctx.inflight.load(std::memory_order_relaxed);
      h.inflight = inflight > 0 ? static_cast<std::uint64_t>(inflight) : 0;
      write_health(out, h);
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kSeed) {
      out << "SEED bad proxy is not a shard\n";
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kGossip) {
      const MembershipAgent::Reply reply = ctx.agent->handle(*req->gossip);
      if (FAILPOINT("gossip.ack")) {
        // Server-side partition half: updates were merged, but the
        // peer hears nothing and starts suspecting us.
        obs::counter("cluster.membership.acks_dropped").add();
        break;  // drop the connection too — a silent peer, not a slow one
      }
      if (reply.snapshot)
        write_membership(out, *reply.snapshot);
      else if (reply.ack)
        write_gossip(out, *reply.ack);
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kMembers) {
      write_membership(out, ctx.agent->membership());
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kLeave) {
      out << "LEAVE ok\n";
      out.flush();
      // Announce departure to the cluster, then stop accepting: the
      // main loop's drain handles in-flight work.  Detached because
      // leave() dials every peer and must not block this client read
      // loop's connection teardown.
      std::thread([&ctx] {
        ctx.agent->leave();
        g_stop = 1;
      }).detach();
      continue;
    }
    if (req->kind == RequestKind::kTrace) {
      TraceDump d;
      d.process = "proxy";
      d.epoch_ns = obs::trace::epoch_ns();
      d.dropped = obs::trace::stats().dropped;
      d.spans = obs::trace::collect();
      write_trace(out, d);
      out.flush();
      continue;
    }
    if (req->kind == RequestKind::kSlow) {
      write_stats(out, ctx.slow ? ctx.slow->render()
                                : "# slow-request recorder off\n");
      out.flush();
      continue;
    }
    ForwardReport frep;
    const auto req_t0 = std::chrono::steady_clock::now();
    const ServiceResponse resp =
        forward_embed(*req, ctx, pool, ctx.slow ? &frep : nullptr);
    if (ctx.slow) {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - req_t0)
                            .count();
      if (ms >= static_cast<double>(ctx.cfg.slow_ms))
        ctx.slow->note(*req, resp, frep, ms);
    }
    if (!dead.load(std::memory_order_relaxed)) {
      write_response(out, resp);
      out.flush();
    }
  }
  reg.remove(fd);
  ::close(fd);
}

/// Over the connection cap: one `status rejected` response, then close.
void refuse_connection(int fd) {
  obs::counter("svc.rejected_conns").add();
  net::FdOutBuf out_buf(fd, /*write_timeout_ms=*/1000, nullptr);
  std::ostream out(&out_buf);
  ServiceResponse rej;
  rej.status = ServiceStatus::kRejected;
  rej.reason = "connection limit";
  write_response(out, rej);
  out.flush();
  ::close(fd);
}

/// Poll every shard's HEALTH: trip the breaker of a shard that cannot
/// answer, close the breaker of one that recovered, and flag identity
/// mismatches (a process serving under the wrong shard id).
///
/// Polls are per-shard deadlines, not one synchronized sweep.  The old
/// loop probed every shard back-to-back each period: N shards meant a
/// thundering herd of simultaneous HEALTH probes (every proxy landing
/// on every shard on the same tick), and one wedged shard's probe
/// budget delayed detection of all the others in its round.  Each
/// shard now gets an initial stagger uniform over one period, then
/// successive polls at interval * (0.75 + 0.5 * uniform) — the herd
/// decoheres and stays decohered.
void health_loop(ProxyCtx& ctx, std::atomic<bool>& stop) {
  using Clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::milliseconds(ctx.cfg.health_interval_ms);
  std::mt19937 rng(std::random_device{}());
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::map<int, bool> was_alive;
  std::map<int, Clock::time_point> next_poll;
  while (!stop.load(std::memory_order_relaxed)) {
    // Live map: shards join and leave under the poller's feet.
    const std::shared_ptr<const ShardMap> map = ctx.router.map();
    const auto now = Clock::now();
    for (const ShardInfo& s : map->shards()) {
      if (stop.load(std::memory_order_relaxed)) break;
      const auto slot = next_poll.find(s.id);
      if (slot == next_poll.end()) {
        // First sight: stagger the initial poll across one period.
        next_poll[s.id] =
            now + std::chrono::duration_cast<Clock::duration>(
                      interval * uni(rng));
        continue;
      }
      if (now < slot->second) continue;
      slot->second = now + std::chrono::duration_cast<Clock::duration>(
                               interval * (0.75 + 0.5 * uni(rng)));
      bool alive = false;
      const int fd = net::connect_endpoint(s.endpoint, /*nonblocking=*/true);
      if (fd >= 0) {
        // Health probes get a short budget of their own: a wedged
        // shard should trip its breaker well within the poll period.
        const int budget =
            std::max(100, ctx.cfg.health_interval_ms / 2);
        UpstreamConn conn(fd, budget, budget);
        ServiceRequest probe;
        probe.kind = RequestKind::kHealth;
        write_request(conn.out, probe);
        conn.out.flush();
        if (const auto h = read_health(conn.in)) {
          // Identity check is id-only: under live membership, epochs
          // are eventually consistent across members, so a transient
          // epoch skew is convergence, not misconfiguration.
          if (h->shard_id != s.id) {
            obs::counter("cluster.health_mismatch").add();
            std::cerr << "starring-proxy: shard " << s.id << " at "
                      << net::to_string(s.endpoint)
                      << " reports identity " << h->shard_id << "\n";
          } else {
            alive = true;
            // Fold the shard's self-reported liveness stats into the
            // proxy's own registry so one STATS scrape of the proxy
            // shows the whole cluster.  record_max keeps the gauges
            // monotone across polls (uptime only moves forward; the
            // inflight gauge is a high-water mark).
            const std::string pfx = "cluster.shard." + std::to_string(s.id);
            obs::counter(pfx + ".uptime_ms")
                .record_max(static_cast<double>(h->uptime_ms));
            obs::counter(pfx + ".inflight_max")
                .record_max(static_cast<double>(h->inflight));
          }
        }
      }
      const auto prev = was_alive.find(s.id);
      if (alive) {
        ctx.router.record_success(s.id);
        if (prev == was_alive.end() || !prev->second)
          std::cerr << "starring-proxy: shard " << s.id << " healthy\n";
      } else {
        obs::counter("cluster.health_failures").add();
        ctx.router.record_failure(s.id, ShardRouter::Clock::now());
        if (ctx.seeder && (prev == was_alive.end() || prev->second)) {
          // A shard just died: previously pushed seeds may have lived
          // there, so let hot classes qualify for seeding again.
          ctx.seeder->forget_seeded();
        }
      }
      was_alive[s.id] = alive;
    }
    // Forget departed shards so a rejoining id starts fresh.
    for (auto it = next_poll.begin(); it != next_poll.end();) {
      if (map->find(it->first) == nullptr) {
        was_alive.erase(it->first);
        it = next_poll.erase(it);
      } else {
        ++it;
      }
    }
    // Short tick: deadlines do the pacing, the tick just bounds how
    // stale a deadline check can be (and keeps shutdown prompt).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// --- main -------------------------------------------------------------

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (--shard-map FILE | --join HOST:PORT) --listen PORT [options]\n"
      << "  --shard-map FILE       static bootstrap membership "
         "(starring-shard-map v1)\n"
      << "  --join HOST:PORT       join a running cluster member instead "
         "of a map\n"
      << "                         file (gossip adopts its snapshot)\n"
      << "  --gossip-interval-ms N SWIM probe period (default 250)\n"
      << "  --suspicion-timeout-ms N  silence before a suspect is "
         "declared dead\n"
      << "                         (default 1500)\n"
      << "  --listen PORT          serve TCP on 127.0.0.1:PORT (0 = "
         "kernel-assigned,\n"
      << "                         printed on stderr)\n"
      << "  --max-conns N          concurrent client connections "
         "(default 64)\n"
      << "  --write-timeout-ms N   evict a client that cannot drain its "
         "socket\n"
      << "                         (default 5000)\n"
      << "  --upstream-timeout-ms N  budget for one shard exchange; "
         "overrun\n"
      << "                         counts as failure and fails over "
         "(default 10000)\n"
      << "  --health-interval-ms N HEALTH poll period, 0 = off "
         "(default 1000)\n"
      << "  --seed-threshold N     ok responses of a class before its "
         "ring is\n"
      << "                         replicated, 0 = off (default 3)\n"
      << "  --drain-timeout-ms N   abort if shutdown drain exceeds N ms\n"
      << "                         (default 10000)\n"
      << "  --bench-artifact S     write BENCH_<S>.json on clean drain\n"
      << "  --slow-ms N            record requests slower than N ms in "
         "the\n"
      << "                         flight recorder, 0 = off (default 0)\n"
      << "  --slow-keep K          flight-recorder capacity (default 32)\n"
      << "  --trace-out FILE       enable tracing; on clean exit pull "
         "every\n"
      << "                         live shard's spans and write one "
         "merged\n"
      << "                         Chrome/Perfetto trace to FILE\n";
  return 2;
}

std::optional<ProxyConfig> parse_args(int argc, char** argv) {
  ProxyConfig cfg;
  bool saw_listen = false;
  const auto num = [&](int* i) -> long {
    if (*i + 1 >= argc) return -1;
    return std::atol(argv[++*i]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long v = 0;
    if (a == "--shard-map" && i + 1 < argc) {
      cfg.shard_map_path = argv[++i];
    } else if (a == "--join" && i + 1 < argc) {
      cfg.join_addr = argv[++i];
    } else if (a == "--gossip-interval-ms" && (v = num(&i)) > 0) {
      cfg.gossip_interval_ms = static_cast<int>(v);
    } else if (a == "--suspicion-timeout-ms" && (v = num(&i)) > 0) {
      cfg.suspicion_timeout_ms = static_cast<int>(v);
    } else if (a == "--listen" && (v = num(&i)) >= 0 && v < 65536) {
      cfg.listen_port = static_cast<int>(v);
      saw_listen = true;
    } else if (a == "--max-conns" && (v = num(&i)) > 0) {
      cfg.max_conns = static_cast<int>(v);
    } else if (a == "--write-timeout-ms" && (v = num(&i)) > 0) {
      cfg.write_timeout_ms = static_cast<int>(v);
    } else if (a == "--upstream-timeout-ms" && (v = num(&i)) > 0) {
      cfg.upstream_timeout_ms = static_cast<int>(v);
    } else if (a == "--health-interval-ms" && (v = num(&i)) >= 0) {
      cfg.health_interval_ms = static_cast<int>(v);
    } else if (a == "--seed-threshold" && (v = num(&i)) >= 0) {
      cfg.seed_threshold = static_cast<int>(v);
    } else if (a == "--drain-timeout-ms" && (v = num(&i)) > 0) {
      cfg.drain_timeout_ms = static_cast<int>(v);
    } else if (a == "--bench-artifact" && i + 1 < argc) {
      cfg.bench_artifact = argv[++i];
    } else if (a == "--slow-ms" && (v = num(&i)) >= 0) {
      cfg.slow_ms = static_cast<int>(v);
    } else if (a == "--slow-keep" && (v = num(&i)) > 0) {
      cfg.slow_keep = static_cast<int>(v);
    } else if (a == "--trace-out" && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else {
      return std::nullopt;
    }
  }
  // Exactly one bootstrap source: a static map file or a seed member.
  if (cfg.shard_map_path.empty() == cfg.join_addr.empty() || !saw_listen)
    return std::nullopt;
  return cfg;
}

int proxy_main(int argc, char** argv) {
  auto cfg = parse_args(argc, argv);
  if (!cfg) return usage(argv[0]);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);
  obs::set_enabled(true);
  if (!cfg->trace_out.empty()) obs::trace::set_enabled(true);

  std::unique_ptr<obs::BenchRecorder> rec;
  if (!cfg->bench_artifact.empty())
    rec = std::make_unique<obs::BenchRecorder>(cfg->bench_artifact);

  // Listen before bootstrapping membership: the gossip identity is the
  // actual listen endpoint (PORT may be kernel-assigned).
  std::string err;
  int actual_port = 0;
  const int listen_fd =
      net::listen_loopback(cfg->listen_port, 16, &actual_port, &err);
  if (listen_fd < 0) {
    std::cerr << "starring-proxy: " << err << "\n";
    return 1;
  }
  std::cerr << "starring-proxy: listening on 127.0.0.1:" << actual_port
            << "\n";

  MemberRecord self;
  self.addr = "127.0.0.1:" + std::to_string(actual_port);
  self.shard_id = -1;  // observer: routes, never owns ring points
  self.incarnation = 1;
  MembershipOptions mopts;
  mopts.probe_interval_ms = cfg->gossip_interval_ms;
  mopts.suspicion_timeout_ms = cfg->suspicion_timeout_ms;
  auto agent = std::make_unique<MembershipAgent>(self, mopts);
  if (!cfg->shard_map_path.empty()) {
    auto map = ShardMap::load(cfg->shard_map_path, &err);
    if (!map) {
      std::cerr << "starring-proxy: bad shard map: " << err << "\n";
      ::close(listen_fd);
      return 1;
    }
    agent->bootstrap_from_map(*map);
  } else if (!agent->join(cfg->join_addr)) {
    std::cerr << "starring-proxy: failed to join cluster via "
              << cfg->join_addr << "\n";
    ::close(listen_fd);
    return 1;
  }
  {
    const std::shared_ptr<const ShardMap> boot = agent->map();
    std::cerr << "starring-proxy: " << boot->shards().size()
              << " shards, replication " << boot->replication()
              << ", epoch " << boot->epoch() << "\n";
  }

  ProxyCtx ctx(*cfg, std::move(agent));
  ctx.agent->on_map_change([&ctx](std::shared_ptr<const ShardMap> m,
                                  const MembershipEvent& ev) {
    // RCU swap: in-flight requests keep their snapshot, the next
    // candidates() fetch routes against the new owner set.
    ctx.router.swap_map(m);
    std::cerr << "starring-proxy: membership "
              << membership_event_name(ev.kind) << " shard "
              << ev.member.shard_id << " (" << ev.member.addr
              << "), epoch " << ev.map_epoch << "\n";
    if (ctx.seeder) {
      if (ev.kind == MembershipEvent::Kind::kDead)
        ctx.seeder->forget_shard(ev.member.shard_id);
      else
        ctx.seeder->handle_map_change(m);  // join/rejoin: seed handoff
    }
  });
  ctx.agent->start();

  std::atomic<bool> health_stop{false};
  std::thread health;
  if (cfg->health_interval_ms > 0)
    health = std::thread([&] { health_loop(ctx, health_stop); });

  net::ConnRegistry reg;
  obs::Counter& accept_errors = obs::counter("svc.accept_errors");
  while (g_stop == 0) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 200 /*ms*/);
    if (r <= 0) continue;  // timeout or EINTR: re-check g_stop
    const int fd =
        net::accept_transient(listen_fd, "starring-proxy", accept_errors);
    if (fd < 0) continue;
    if (reg.count() >= static_cast<std::size_t>(cfg->max_conns)) {
      refuse_connection(fd);
      continue;
    }
    if (!net::set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    reg.add(fd);
    std::thread([fd, &ctx, &reg] { serve_client(fd, ctx, reg); }).detach();
  }
  ::close(listen_fd);

  net::DrainGuard drain_guard(cfg->drain_timeout_ms);
  reg.shutdown_all(SHUT_RD);
  if (!reg.wait_empty(cfg->drain_timeout_ms / 2)) {
    reg.shutdown_all(SHUT_RDWR);
    if (!reg.wait_empty(cfg->drain_timeout_ms / 4)) {
      std::cerr << "starring-proxy: connections failed to drain, aborting\n";
      std::_Exit(1);
    }
  }
  if (health.joinable()) {
    health_stop.store(true, std::memory_order_relaxed);
    health.join();
  }
  // Depart politely even on SIGTERM: peers see `left` instead of
  // burning a suspicion window on us.  Idempotent if a LEAVE command
  // already ran.  Stop before the seeder drains so no more handoff
  // callbacks land in a dying seeder.
  ctx.agent->leave();
  ctx.agent->stop();
  ctx.seeder.reset();  // flush pending seed pushes

  if (!cfg->trace_out.empty()) {
    // Cluster-wide collection: the proxy's own spans plus a TRACE pull
    // from every shard still alive, merged onto one timeline.  Shards
    // must outlive the proxy for this to see their spans — the drill
    // stops the proxy first.
    std::vector<TraceDump> dumps;
    TraceDump own;
    own.process = "proxy";
    own.epoch_ns = obs::trace::epoch_ns();
    own.dropped = obs::trace::stats().dropped;
    own.spans = obs::trace::collect();
    dumps.push_back(std::move(own));
    const std::shared_ptr<const ShardMap> final_map = ctx.router.map();
    for (const ShardInfo& s : final_map->shards()) {
      const int fd =
          net::connect_endpoint(s.endpoint, /*nonblocking=*/true);
      if (fd < 0) {
        std::cerr << "starring-proxy: trace pull: shard " << s.id
                  << " unreachable, spans lost\n";
        continue;
      }
      UpstreamConn conn(fd, cfg->upstream_timeout_ms,
                        cfg->write_timeout_ms);
      ServiceRequest pull;
      pull.kind = RequestKind::kTrace;
      write_request(conn.out, pull);
      conn.out.flush();
      std::string trace_err;
      if (auto d = read_trace(conn.in, &trace_err)) {
        dumps.push_back(std::move(*d));
      } else {
        std::cerr << "starring-proxy: trace pull: shard " << s.id << ": "
                  << (trace_err.empty() ? "closed early" : trace_err)
                  << "\n";
      }
    }
    std::ofstream tf(cfg->trace_out);
    if (tf && write_merged_chrome_trace(tf, dumps)) {
      std::size_t total = 0;
      for (const TraceDump& d : dumps) total += d.spans.size();
      std::cerr << "starring-proxy: wrote " << total << " spans from "
                << dumps.size() << " processes to " << cfg->trace_out
                << "\n";
    } else {
      std::cerr << "starring-proxy: failed to write " << cfg->trace_out
                << "\n";
    }
  }
  if (ctx.slow) std::cerr << ctx.slow->render();

  if (rec) {
    const double hits =
        static_cast<double>(obs::counter("cluster.cache_hits").value());
    const double misses =
        static_cast<double>(obs::counter("cluster.cache_misses").value());
    rec->add_counter("cluster.cache_hit_rate",
                     hits + misses > 0 ? hits / (hits + misses) : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace starring::cluster

int main(int argc, char** argv) {
  return starring::cluster::proxy_main(argc, argv);
}
