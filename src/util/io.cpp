#include "util/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace starring {

namespace {

void fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
}

/// Parse a 1-based permutation literal like "2134567" (n <= 9 digits) or
/// dot-separated "2.1.10.3..." for larger n.
std::optional<Perm> parse_perm(const std::string& text, int n) {
  std::vector<int> syms;
  if (text.find('.') == std::string::npos) {
    for (const char c : text) {
      if (c < '1' || c > '9') return std::nullopt;
      syms.push_back(c - '1');
    }
  } else {
    std::istringstream ss(text);
    std::string tok;
    while (std::getline(ss, tok, '.')) {
      if (tok.empty()) return std::nullopt;
      int v = 0;
      for (const char c : tok) {
        if (c < '0' || c > '9') return std::nullopt;
        v = v * 10 + (c - '0');
      }
      syms.push_back(v - 1);
    }
  }
  if (static_cast<int>(syms.size()) != n) return std::nullopt;
  std::uint32_t seen = 0;
  for (const int s : syms) {
    if (s < 0 || s >= n || ((seen >> s) & 1u)) return std::nullopt;
    seen |= 1u << s;
  }
  return Perm::of(syms);
}

}  // namespace

bool write_embedding(std::ostream& os, const EmbeddingFile& e) {
  os << "starring-embedding v1\n";
  os << "n " << e.n << "\n";
  os << "kind " << (e.is_ring ? "ring" : "path") << "\n";
  const auto vf = e.faults.vertex_faults();
  os << "vertex_faults " << vf.size() << "\n";
  for (const Perm& f : vf) os << f.to_string() << "\n";
  const auto ef = e.faults.edge_faults();
  os << "edge_faults " << ef.size() << "\n";
  for (const EdgeFault& f : ef)
    os << f.u.to_string() << ' ' << f.v.to_string() << "\n";
  os << "sequence " << e.sequence.size() << "\n";
  for (std::size_t i = 0; i < e.sequence.size(); ++i)
    os << e.sequence[i] << ((i + 1) % 16 == 0 ? '\n' : ' ');
  os << "\n";
  return static_cast<bool>(os);
}

std::optional<EmbeddingFile> read_embedding(std::istream& is,
                                            std::string* error) {
  std::string word;
  std::string version;
  if (!(is >> word >> version) || word != "starring-embedding" ||
      version != "v1") {
    fail(error, "bad header");
    return std::nullopt;
  }
  EmbeddingFile e;
  if (!(is >> word >> e.n) || word != "n" || e.n < 1 || e.n > kMaxN) {
    fail(error, "bad dimension line");
    return std::nullopt;
  }
  std::string kind;
  if (!(is >> word >> kind) || word != "kind" ||
      (kind != "ring" && kind != "path")) {
    fail(error, "bad kind line");
    return std::nullopt;
  }
  e.is_ring = kind == "ring";

  std::size_t count = 0;
  if (!(is >> word >> count) || word != "vertex_faults") {
    fail(error, "bad vertex_faults line");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string lit;
    if (!(is >> lit)) {
      fail(error, "truncated vertex faults");
      return std::nullopt;
    }
    const auto p = parse_perm(lit, e.n);
    if (!p) {
      fail(error, "bad vertex fault '" + lit + "'");
      return std::nullopt;
    }
    e.faults.add_vertex(*p);
  }

  if (!(is >> word >> count) || word != "edge_faults") {
    fail(error, "bad edge_faults line");
    return std::nullopt;
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string la;
    std::string lb;
    if (!(is >> la >> lb)) {
      fail(error, "truncated edge faults");
      return std::nullopt;
    }
    const auto a = parse_perm(la, e.n);
    const auto b = parse_perm(lb, e.n);
    if (!a || !b || !a->adjacent(*b)) {
      fail(error, "bad edge fault '" + la + " " + lb + "'");
      return std::nullopt;
    }
    e.faults.add_edge(*a, *b);
  }

  if (!(is >> word >> count) || word != "sequence") {
    fail(error, "bad sequence line");
    return std::nullopt;
  }
  e.sequence.reserve(count);
  const std::uint64_t limit = factorial(e.n);
  for (std::size_t i = 0; i < count; ++i) {
    VertexId id = 0;
    if (!(is >> id)) {
      fail(error, "truncated sequence");
      return std::nullopt;
    }
    if (id >= limit) {
      fail(error, "vertex id out of range: " + std::to_string(id));
      return std::nullopt;
    }
    e.sequence.push_back(id);
  }
  return e;
}

}  // namespace starring
