#include "core/block_oracle.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "perm/permutation.hpp"
#include "stargraph/substar.hpp"

namespace starring {

BlockOracle::BlockOracle() : graph_(kBlockSize) {
  // Materialize the abstract block graph from the one canonical S_4:
  // the whole pattern of n = 4 (free positions 0..3, local index =
  // Lehmer rank).  Every embedded S_4 block of every S_n has this exact
  // local structure.
  const SubstarPattern s4 = SubstarPattern::whole(4);
  const SmallGraph g = s4.block_graph();
  for (int u = 0; u < kBlockSize; ++u)
    for (int v = u + 1; v < kBlockSize; ++v)
      if (g.has_edge(u, v)) graph_.add_edge(u, v);
  parity_.reserve(kBlockSize);
  for (int k = 0; k < kBlockSize; ++k)
    parity_.push_back(Perm::unrank(static_cast<VertexId>(k), 4).parity());
}

std::optional<std::vector<int>> BlockOracle::find_path(
    int from, int to, std::uint32_t forbidden, int target_vertices,
    std::span<const std::pair<int, int>> removed_edges) {
  assert(from >= 0 && from < kBlockSize && to >= 0 && to < kBlockSize);
  if (!removed_edges.empty()) {
    // Rare (edge-fault experiments only): search an ad-hoc copy.
    SmallGraph g = graph_;
    for (const auto& [u, v] : removed_edges) g.remove_edge(u, v);
    return path_with_exact_vertices(g, from, to, forbidden, target_vertices);
  }
  const std::uint64_t key = static_cast<std::uint64_t>(from) |
                            (static_cast<std::uint64_t>(to) << 5) |
                            (static_cast<std::uint64_t>(forbidden) << 10) |
                            (static_cast<std::uint64_t>(target_vertices) << 34);
  // Function-local statics: one registry lookup per process, then a
  // relaxed atomic add per query (and only while metrics are enabled).
  static obs::Counter& hit_counter = obs::counter("oracle.cache_hits");
  static obs::Counter& miss_counter = obs::counter("oracle.cache_misses");
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    hit_counter.add();
    return it->second;
  }
  ++misses_;
  miss_counter.add();
  auto result =
      path_with_exact_vertices(graph_, from, to, forbidden, target_vertices);
  cache_.emplace(key, result);
  return result;
}

}  // namespace starring
