// Precomputed Lehmer decode of every local index of a 24-member S_4
// block: digit[k][m] is the m-th Lehmer digit of k and sym[k][m] the
// index (into the sorted free symbols) chosen for the m-th free
// position.  Shared by MemberExpander::member_rank (stargraph/substar)
// and the chaining engine's struct-of-arrays emit/expansion loops
// (core/chaining), which decode whole blocks with table lookups only —
// no division, no array shifting, no Perm materialization.
#pragma once

#include <array>
#include <cstdint>

#include "perm/factorial.hpp"

namespace starring {

struct Lehmer4 {
  std::array<std::array<std::uint8_t, 4>, 24> digit{};
  std::array<std::array<std::uint8_t, 4>, 24> sym{};
};

namespace detail {
constexpr Lehmer4 make_lehmer4() {
  Lehmer4 t{};
  for (int k = 0; k < 24; ++k) {
    int rem[4] = {0, 1, 2, 3};
    int kk = k;
    for (int m = 0; m < 4; ++m) {
      const int f = static_cast<int>(factorial(3 - m));
      const int d = kk / f;
      kk %= f;
      t.digit[static_cast<std::size_t>(k)][static_cast<std::size_t>(m)] =
          static_cast<std::uint8_t>(d);
      t.sym[static_cast<std::size_t>(k)][static_cast<std::size_t>(m)] =
          static_cast<std::uint8_t>(rem[d]);
      for (int j = d; j + 1 < 4 - m; ++j) rem[j] = rem[j + 1];
    }
  }
  return t;
}
}  // namespace detail

inline constexpr Lehmer4 kLehmer4 = detail::make_lehmer4();

}  // namespace starring
