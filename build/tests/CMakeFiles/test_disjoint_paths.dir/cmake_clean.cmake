file(REMOVE_RECURSE
  "CMakeFiles/test_disjoint_paths.dir/test_disjoint_paths.cpp.o"
  "CMakeFiles/test_disjoint_paths.dir/test_disjoint_paths.cpp.o.d"
  "test_disjoint_paths"
  "test_disjoint_paths.pdb"
  "test_disjoint_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disjoint_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
