#include "extensions/mixed_faults.hpp"

#include "core/chaining.hpp"
#include "core/super_ring.hpp"

namespace starring {

bool mixed_fault_regime_ok(const StarGraph& g, const FaultSet& faults) {
  return g.n() >= 4 &&
         faults.num_vertex_faults() + faults.num_edge_faults() <=
             static_cast<std::size_t>(g.n() - 3);
}

std::optional<MixedFaultResult> embed_mixed_fault_ring(
    const StarGraph& g, const FaultSet& faults, const EmbedOptions& opts) {
  auto res = embed_longest_ring(g, faults, opts);
  if (!res) return std::nullopt;
  return MixedFaultResult{
      std::move(*res), expected_ring_length(g.n(), faults.num_vertex_faults())};
}

std::optional<MixedFaultResult> embed_mixed_fault_ring_baseline(
    const StarGraph& g, const FaultSet& faults, const EmbedOptions& opts) {
  const int n = g.n();
  const std::uint64_t promise =
      factorial(n) - 4 * faults.num_vertex_faults();
  if (n < 5) {
    auto res = embed_longest_ring(g, faults, opts);
    if (!res) return std::nullopt;
    return MixedFaultResult{std::move(*res), promise};
  }
  const PartitionSelection sel =
      select_partition_positions(n, faults, opts.heuristic);
  for (int restart = 0; restart < std::max(1, opts.max_restarts); ++restart) {
    const auto sr = build_block_ring(n, sel.positions, faults, restart);
    if (!sr) continue;
    auto res = chain_block_ring(g, *sr, faults, opts, /*per_fault_loss=*/4);
    if (res) {
      res->stats.restarts = restart;
      return MixedFaultResult{std::move(*res), promise};
    }
  }
  return std::nullopt;
}

}  // namespace starring
