// Static cluster membership + consistent-hash placement.
//
// A shard map is a small text file shared by every process in a
// deployment (shards, proxy, tooling):
//
//   starring-shard-map v1
//   epoch 1
//   replication 2
//   vnodes 128
//   shards 3
//   shard 0 127.0.0.1:47181
//   shard 1 127.0.0.1:47182
//   shard 2 127.0.0.1:47183
//   end
//
// epoch/replication/vnodes are optional (defaults 1/2/128) and must
// precede the shards section.  Shard ids are arbitrary distinct
// non-negative integers — placement hashes the *id*, not the position
// in the file, so two maps listing the same shards in different order
// place every key identically.
//
// Placement is a consistent-hash ring: every shard contributes
// `vnodes` points at place_hash("shard-<id>#<k>"), a key's owner is
// the first point clockwise of place_hash(key), and its replica set is the
// next replication-1 *distinct* shards clockwise.  Because vnode
// points depend only on the shard's own id, removing a shard moves
// exactly the keys it owned (its points vanish; everyone else's stay
// put) — the minimal-disruption property the tests pin down.
//
// A map file is one of two ways a map comes to exist.  Originally the
// file was the *only* way ("deliberately static", restart to change
// anything); since the membership layer (cluster/membership.hpp) maps
// are also built programmatically — make() at bootstrap, then
// with()/without() per confirmed join/leave/death, each bumping the
// epoch.  The file remains the static-bootstrap and tooling format
// (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/net.hpp"

namespace starring::cluster {

/// FNV-1a, 64-bit.  Chosen over a fancier hash because placement only
/// needs determinism across processes and decent vnode dispersion —
/// and a 10-line function with published test vectors is auditable.
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// MurmurHash3's 64-bit finalizer.  FNV-1a disperses short, similar
/// strings ("shard-3#17", "n=5;fv=...") mostly in its low bits, but
/// ring order compares full 64-bit values — dominated by the high
/// bits, where FNV barely avalanches, so raw FNV points cluster and
/// shard load skews 2x regardless of vnode count.  Finalizing fixes
/// the avalanche; placement hashes are mix64(fnv1a64(...)).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// The hash every placement decision uses (ring points and keys).
constexpr std::uint64_t place_hash(std::string_view s) {
  return mix64(fnv1a64(s));
}

struct ShardInfo {
  int id = -1;
  net::Endpoint endpoint;
};

class ShardMap {
 public:
  /// Parse a shard-map record from a stream.  nullopt with a short
  /// reason in *error on malformed input (bad header, duplicate ids,
  /// replication outside [1, shard count], ...).
  static std::optional<ShardMap> parse(std::istream& is,
                                       std::string* error = nullptr);
  static std::optional<ShardMap> load(const std::string& path,
                                      std::string* error = nullptr);

  /// Build a map programmatically (the membership layer's bootstrap
  /// path).  Unlike parse(), an *empty* shard list is allowed — a
  /// cluster an observer joined before any shard did routes nothing
  /// until a shard arrives.  replication is clamped to [1, max(count,
  /// 1)], vnodes to the parser's cap; duplicate ids are the caller's
  /// responsibility (the membership table keys members by endpoint and
  /// resolves id conflicts before building).
  static ShardMap make(std::vector<ShardInfo> shards, std::uint64_t epoch,
                       int replication, int vnodes);

  std::uint64_t epoch() const { return epoch_; }
  int replication() const { return replication_; }
  int vnodes() const { return vnodes_; }
  const std::vector<ShardInfo>& shards() const { return shards_; }
  const ShardInfo* find(int shard_id) const;

  /// Owner shard id for a canonical-class key.
  int owner(std::string_view key) const;

  /// The key's owner followed by its replication-1 replicas: the next
  /// distinct shards clockwise on the ring.  Size = min(replication,
  /// shard count); entries are distinct by construction.
  std::vector<int> replicas(std::string_view key) const;

  /// Every shard reachable for the key, nearest-first: replicas() then
  /// the remaining shards in clockwise ring order.  A proxy walks this
  /// list last-resort — any shard can *compute* any class, non-replicas
  /// just will not have it cached.
  std::vector<int> all_candidates(std::string_view key) const;

  /// Membership-change simulation: the same map minus one shard
  /// (replication clamped to the surviving count).  Used by the
  /// disruption tests and by operators previewing a shrink.
  ShardMap without(int shard_id) const;

  /// Membership-change simulation, growth direction: the same map plus
  /// one shard (epoch bumped).  An existing id has its endpoint
  /// replaced in place — a shard rejoining on a new port keeps every
  /// key where it was, because placement hashes only the id.
  ShardMap with(const ShardInfo& s) const;

  /// Set the *target* R and re-clamp the effective replication to
  /// [1, shard count].  The target survives with()/without() churn, so
  /// a cluster that shrank below R heals back to full replication as
  /// members return — no external bookkeeping required.
  void set_replication(int target);

  /// Round-trippable text form (same grammar parse() accepts).
  std::string to_text() const;

 private:
  struct RingPoint {
    std::uint64_t hash = 0;
    int shard_id = -1;
  };

  void build_ring();
  /// Index into ring_ of the first point clockwise of the key's hash.
  std::size_t ring_start(std::string_view key) const;

  std::uint64_t epoch_ = 1;
  int replication_ = 2;  // effective: clamped to the shard count
  int target_replication_ = 2;  // configured R, survives churn
  int vnodes_ = 128;
  std::vector<ShardInfo> shards_;
  std::vector<RingPoint> ring_;  // sorted by (hash, shard_id)
};

}  // namespace starring::cluster
