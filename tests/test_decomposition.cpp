// Tests for disjoint ring decompositions of S_n.
#include <gtest/gtest.h>

#include <set>

#include "fault/generators.hpp"
#include "stargraph/decomposition.hpp"

namespace starring {
namespace {

void expect_disjoint_cycles(const StarGraph& g,
                            const std::vector<std::vector<VertexId>>& rings,
                            std::size_t expected_covered) {
  std::set<VertexId> covered;
  for (const auto& ring : rings) {
    ASSERT_GE(ring.size(), 3u);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_TRUE(covered.insert(ring[i]).second) << "vertex reused";
      EXPECT_TRUE(g.vertex(ring[i]).adjacent(
          g.vertex(ring[(i + 1) % ring.size()])));
    }
  }
  EXPECT_EQ(covered.size(), expected_covered);
}

TEST(Decomposition, SixRingsPartitionEverything) {
  for (int n = 3; n <= 6; ++n) {
    const StarGraph g(n);
    const auto rings = six_ring_decomposition(g);
    EXPECT_EQ(rings.size(), g.num_vertices() / 6);
    for (const auto& r : rings) EXPECT_EQ(r.size(), 6u);
    expect_disjoint_cycles(g, rings, g.num_vertices());
  }
}

TEST(Decomposition, BlockRingsPartitionEverything) {
  for (int n = 4; n <= 6; ++n) {
    const StarGraph g(n);
    const auto rings = block_ring_decomposition(g);
    EXPECT_EQ(rings.size(), g.num_vertices() / 24);
    for (const auto& r : rings) EXPECT_EQ(r.size(), 24u);
    expect_disjoint_cycles(g, rings, g.num_vertices());
  }
}

TEST(Decomposition, FaultyCoverShrinksGracefully) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 13);
  const auto rings = faulty_block_ring_decomposition(g, f);
  // Faults are random: blocks holding one fault keep a 22-ring.
  std::size_t full = 0;
  std::size_t shrunk = 0;
  std::set<VertexId> covered;
  for (const auto& ring : rings) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_TRUE(covered.insert(ring[i]).second);
      EXPECT_FALSE(f.vertex_faulty(g.vertex(ring[i])));
      EXPECT_TRUE(g.vertex(ring[i]).adjacent(
          g.vertex(ring[(i + 1) % ring.size()])));
    }
    if (ring.size() == 24)
      ++full;
    else
      ++shrunk;
  }
  EXPECT_EQ(full + shrunk, g.num_vertices() / 24);
  EXPECT_LE(shrunk, f.num_vertex_faults());
  // Total coverage: n! minus 2 per fault when faults land in distinct
  // blocks (they may collide; then the loss can differ — bound it).
  EXPECT_GE(covered.size(), g.num_vertices() - 4 * f.num_vertex_faults());
}

TEST(Decomposition, FaultyCoverNoFaultsEqualsFullCover) {
  const StarGraph g(5);
  const auto a = block_ring_decomposition(g);
  const auto b = faulty_block_ring_decomposition(g, FaultSet{});
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Decomposition, SixRingsAreTheThreeVertexCycles) {
  // Every returned 6-ring stays inside one 3-vertex: all members agree
  // outside positions {0,1,2}.
  const StarGraph g(5);
  const auto rings = six_ring_decomposition(g);
  for (const auto& ring : rings) {
    const Perm base = g.vertex(ring.front());
    for (const VertexId id : ring) {
      const Perm p = g.vertex(id);
      for (int pos = 3; pos < 5; ++pos) EXPECT_EQ(p.get(pos), base.get(pos));
    }
  }
}

}  // namespace
}  // namespace starring
