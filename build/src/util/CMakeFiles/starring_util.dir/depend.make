# Empty dependencies file for starring_util.
# This may be replaced when dependencies are built.
