# Empty compiler generated dependencies file for starring_extensions.
# This may be replaced when dependencies are built.
