#include "core/ring_embedder.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <unordered_map>

#include "core/block_oracle.hpp"
#include "core/chaining.hpp"
#include "core/super_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

/// STARRING_THREADS, parsed once: -1 = unset/invalid (no override),
/// otherwise the requested count with 0 meaning hardware concurrency.
long env_thread_override() {
  static const long parsed = [] {
    const char* env = std::getenv("STARRING_THREADS");
    if (env == nullptr || *env == '\0') return -1L;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) return -1L;
    return v;
  }();
  return parsed;
}

}  // namespace

unsigned EmbedOptions::effective_threads() const {
  const long env = env_thread_override();
  const unsigned requested =
      env >= 0 ? static_cast<unsigned>(env) : num_threads;
  return requested == 0 ? default_threads() : requested;
}

std::uint64_t expected_ring_length(int n, std::size_t num_vertex_faults) {
  return factorial(n) - 2 * static_cast<std::uint64_t>(num_vertex_faults);
}

std::uint64_t bipartite_upper_bound(const StarGraph& g,
                                    const FaultSet& faults) {
  std::uint64_t even = 0;
  std::uint64_t odd = 0;
  for (const Perm& f : faults.vertex_faults())
    (f.parity() == 0 ? even : odd) += 1;
  return factorial(g.n()) - 2 * std::max(even, odd);
}

namespace {

/// Direct search for tiny n (3 and 4): the whole of S_n is one block of
/// at most 24 vertices, so the exhaustive machinery applies verbatim.
std::optional<EmbedResult> embed_small(const StarGraph& g,
                                       const FaultSet& faults) {
  const SubstarPattern whole = g.whole_pattern();
  SmallGraph block = whole.block_graph();
  std::uint32_t forbidden = 0;
  for (const Perm& f : faults.vertex_faults())
    forbidden |= 1u << whole.local_index(f);
  for (const EdgeFault& e : faults.edge_faults())
    block.remove_edge(static_cast<int>(whole.local_index(e.u)),
                      static_cast<int>(whole.local_index(e.v)));

  std::optional<std::vector<int>> cycle;
  if (faults.num_vertex_faults() == 0) {
    cycle = hamiltonian_cycle(block, forbidden);
  } else {
    auto lc = longest_cycle(block, forbidden);
    if (lc.length >= 3) cycle = std::move(lc.cycle);
  }
  if (!cycle) return std::nullopt;
  EmbedResult res;
  res.ring.reserve(cycle->size());
  for (const int local : *cycle)
    res.ring.push_back(whole.member(static_cast<std::uint64_t>(local)).rank());
  res.stats.num_blocks = 1;
  res.stats.faulty_blocks = faults.num_vertex_faults() > 0 ? 1 : 0;
  return res;
}

}  // namespace

namespace {

/// The driver proper; embed_longest_ring wraps it in instrumentation.
std::optional<EmbedResult> embed_longest_ring_impl(const StarGraph& g,
                                                   const FaultSet& faults,
                                                   const EmbedOptions& opts) {
  const int n = g.n();
  if (n < 3) return std::nullopt;  // S_1, S_2 contain no cycle
  if (n <= 4) return embed_small(g, faults);

  const PartitionSelection sel =
      select_partition_positions(n, faults, opts.heuristic);
  for (int restart = 0; restart < std::max(1, opts.max_restarts); ++restart) {
    if (opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_relaxed))
      return std::nullopt;
    const auto sr = [&] {
      obs::ScopedPhase phase("super_ring");
      obs::trace::ScopedSpan span("super_ring");
      return build_block_ring(n, sel.positions, faults, restart);
    }();
    if (!sr) continue;
    auto res = chain_block_ring(g, *sr, faults, opts);
    if (res) {
      res->stats.restarts = restart;
      return res;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<EmbedResult> embed_longest_ring(const StarGraph& g,
                                              const FaultSet& faults,
                                              const EmbedOptions& opts) {
  if (!obs::enabled()) return embed_longest_ring_impl(g, faults, opts);

  const obs::Snapshot before = obs::snapshot();

  // Gauges the bench artifact reads back as its n / faults extents.
  obs::counter("embed.max_n").record_max(g.n());
  obs::counter("embed.max_faults")
      .record_max(static_cast<std::int64_t>(faults.num_vertex_faults() +
                                            faults.num_edge_faults()));
  obs::counter("embed.calls").add();
  obs::counter("embed.threads").record_max(opts.effective_threads());
  auto res = [&] {
    obs::ScopedPhase phase("embed");
    obs::trace::ScopedSpan span("embed");
    return embed_longest_ring_impl(g, faults, opts);
  }();
  if (res) {
    obs::counter("embed.restarts").add(res->stats.restarts);
    obs::counter("embed.backtracks").add(res->stats.backtracks);
    obs::counter("embed.closure_attempts").add(res->stats.closure_attempts);
    res->stats.counters = obs::snapshot_delta(before);
  } else {
    obs::counter("embed.failures").add();
  }
  return res;
}

std::optional<EmbedResult> embed_hamiltonian_cycle(const StarGraph& g,
                                                   const EmbedOptions& opts) {
  return embed_longest_ring(g, FaultSet{}, opts);
}

}  // namespace starring
