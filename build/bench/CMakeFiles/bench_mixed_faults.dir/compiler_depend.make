# Empty compiler generated dependencies file for bench_mixed_faults.
# This may be replaced when dependencies are built.
