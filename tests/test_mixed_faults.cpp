// Tests for the mixed-fault corollary: ring of n! - 2|Fv| under
// |Fv| + |Fe| <= n-3 combined vertex and edge faults.
#include <gtest/gtest.h>

#include <tuple>

#include "core/verify.hpp"
#include "extensions/mixed_faults.hpp"
#include "fault/generators.hpp"

namespace starring {
namespace {

TEST(MixedFaults, RegimeCheck) {
  const StarGraph g(6);
  EXPECT_TRUE(mixed_fault_regime_ok(g, mixed_faults(g, 1, 2, 1)));
  EXPECT_TRUE(mixed_fault_regime_ok(g, mixed_faults(g, 3, 0, 1)));
  EXPECT_FALSE(mixed_fault_regime_ok(g, mixed_faults(g, 2, 2, 1)));
}

class MixedParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MixedParamTest, CorollaryLengthAchieved) {
  const auto [n, nv, ne] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FaultSet f = mixed_faults(g, nv, ne, seed);
    ASSERT_TRUE(mixed_fault_regime_ok(g, f));
    const auto res = embed_mixed_fault_ring(g, f);
    ASSERT_TRUE(res.has_value()) << "n=" << n << " nv=" << nv
                                 << " ne=" << ne << " seed=" << seed;
    const auto rep = verify_healthy_ring(g, f, res->embed.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, res->promised_length);
    EXPECT_EQ(res->promised_length,
              factorial(n) - 2 * static_cast<std::uint64_t>(nv));
  }
}

INSTANTIATE_TEST_SUITE_P(MixedSweep, MixedParamTest,
                         ::testing::Values(std::make_tuple(5, 1, 1),
                                           std::make_tuple(6, 1, 2),
                                           std::make_tuple(6, 2, 1),
                                           std::make_tuple(6, 3, 0),
                                           std::make_tuple(6, 0, 3),
                                           std::make_tuple(7, 2, 2)));

TEST(MixedFaults, ImprovesOnBaselineBound) {
  const StarGraph g(6);
  const FaultSet f = mixed_faults(g, 2, 1, 3);
  const auto ours = embed_mixed_fault_ring(g, f);
  const auto base = embed_mixed_fault_ring_baseline(g, f);
  ASSERT_TRUE(ours && base);
  EXPECT_EQ(ours->embed.ring.size(), 720u - 4);
  EXPECT_EQ(base->embed.ring.size(), 720u - 8);
  EXPECT_EQ(base->promised_length, 720u - 8);
  const auto rep = verify_healthy_ring(g, f, base->embed.ring);
  EXPECT_TRUE(rep.valid) << rep.error;
}

TEST(MixedFaults, EdgeOnlyKeepsFullLength) {
  const StarGraph g(5);
  const FaultSet f = mixed_faults(g, 0, 2, 9);
  const auto res = embed_mixed_fault_ring(g, f);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->embed.ring.size(), 120u);
}

TEST(MixedFaults, SmallNRegime) {
  // n = 4 admits |Fv| + |Fe| <= 1.
  const StarGraph g(4);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FaultSet fv = mixed_faults(g, 1, 0, seed);
    const auto res = embed_mixed_fault_ring(g, fv);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->embed.ring.size(), 22u);
    const FaultSet fe = mixed_faults(g, 0, 1, seed);
    const auto res2 = embed_mixed_fault_ring(g, fe);
    ASSERT_TRUE(res2.has_value());
    EXPECT_EQ(res2->embed.ring.size(), 24u);
  }
}

}  // namespace
}  // namespace starring
