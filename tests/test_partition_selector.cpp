// Unit tests for the Lemma 2 partition-position selector.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/partition_selector.hpp"
#include "fault/generators.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

/// Count faults per final block directly: two faults collide iff they
/// agree on every selected position.
int max_collisions(const std::vector<Perm>& faults,
                   const std::vector<int>& positions) {
  int worst = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    int same = 1;
    for (std::size_t j = 0; j < faults.size(); ++j) {
      if (i == j) continue;
      bool agree = true;
      for (int p : positions)
        if (faults[i].get(p) != faults[j].get(p)) agree = false;
      if (agree) ++same;
    }
    worst = std::max(worst, same);
  }
  return worst;
}

class SelectorParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, SplitHeuristic>> {};

TEST_P(SelectorParamTest, IsolatesFaultsWithinLemma2Regime) {
  const auto [n, nf, heur] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const FaultSet f = random_vertex_faults(g, nf, seed);
    const auto sel = select_partition_positions(n, f, heur);
    EXPECT_EQ(sel.positions.size(), static_cast<std::size_t>(n - 4));
    // Positions distinct and in [1, n).
    std::set<int> distinct(sel.positions.begin(), sel.positions.end());
    EXPECT_EQ(distinct.size(), sel.positions.size());
    for (int p : sel.positions) {
      EXPECT_GE(p, 1);
      EXPECT_LT(p, n);
    }
    // Lemma 2: each final block holds at most one fault.
    EXPECT_LE(sel.max_faults_per_block, 1) << "n=" << n << " seed=" << seed;
    EXPECT_EQ(sel.max_faults_per_block,
              std::min<int>(1, static_cast<int>(f.num_vertex_faults())));
    EXPECT_EQ(max_collisions(f.vertex_faults(), sel.positions),
              sel.max_faults_per_block);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lemma2Sweep, SelectorParamTest,
    ::testing::Values(
        std::make_tuple(5, 2, SplitHeuristic::kFirstSplitting),
        std::make_tuple(5, 2, SplitHeuristic::kMaxSplitting),
        std::make_tuple(6, 3, SplitHeuristic::kFirstSplitting),
        std::make_tuple(6, 3, SplitHeuristic::kMaxSplitting),
        std::make_tuple(7, 4, SplitHeuristic::kFirstSplitting),
        std::make_tuple(7, 4, SplitHeuristic::kMaxSplitting),
        std::make_tuple(8, 5, SplitHeuristic::kMaxSplitting),
        std::make_tuple(9, 6, SplitHeuristic::kMaxSplitting)));

TEST(Selector, NoFaultsStillYieldsPositions) {
  const auto sel = select_partition_positions(7, FaultSet{});
  EXPECT_EQ(sel.positions.size(), 3u);
  EXPECT_EQ(sel.max_faults_per_block, 0);
  EXPECT_EQ(sel.effective_splits, 0);
}

TEST(Selector, SingleFaultNeedsNoSplits) {
  const StarGraph g(6);
  FaultSet f;
  f.add_vertex(g.vertex(123));
  const auto sel = select_partition_positions(6, f);
  EXPECT_EQ(sel.effective_splits, 0);
  EXPECT_EQ(sel.max_faults_per_block, 1);
}

TEST(Selector, PaperExamplePositionChoice) {
  // The paper's example: Fv = {12356, 12365}; a_1 may be 4 or 6
  // wait — the two permutations differ exactly at 1-based positions
  // 4 and 5 are "56" vs "65": 0-based positions 3 and 4.  A single
  // split position must separate them.
  FaultSet f;
  f.add_vertex(Perm::of({0, 1, 2, 4, 3}));
  f.add_vertex(Perm::of({0, 1, 2, 3, 4}));
  const auto sel = select_positions_for(
      5, f.vertex_faults(), 1, SplitHeuristic::kFirstSplitting);
  ASSERT_EQ(sel.positions.size(), 1u);
  EXPECT_TRUE(sel.positions[0] == 3 || sel.positions[0] == 4);
  EXPECT_EQ(sel.max_faults_per_block, 1);
}

TEST(Selector, AdversarialPrefixAgreement) {
  // Faults agreeing on a long prefix force the selector into the
  // differing tail positions.
  const int n = 8;
  std::vector<Perm> faults;
  faults.push_back(Perm::of({0, 1, 2, 3, 4, 5, 6, 7}));
  faults.push_back(Perm::of({0, 1, 2, 3, 4, 5, 7, 6}));
  faults.push_back(Perm::of({0, 1, 2, 3, 4, 6, 5, 7}));
  faults.push_back(Perm::of({0, 1, 2, 3, 4, 7, 6, 5}));
  const auto sel = select_positions_for(n, faults, n - 4,
                                        SplitHeuristic::kMaxSplitting);
  EXPECT_EQ(sel.max_faults_per_block, 1);
}

TEST(Selector, SamePartiteWorstCase) {
  const StarGraph g(7);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto f = same_partite_vertex_faults(g, 4, 0, seed);
    const auto sel = select_partition_positions(7, f);
    EXPECT_LE(sel.max_faults_per_block, 1);
  }
}

TEST(Selector, MaxSplittingNeverWorseThanFirst) {
  const StarGraph g(8);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto f = random_vertex_faults(g, 5, seed);
    const auto first = select_partition_positions(
        8, f, SplitHeuristic::kFirstSplitting);
    const auto maxs = select_partition_positions(
        8, f, SplitHeuristic::kMaxSplitting);
    EXPECT_LE(maxs.max_faults_per_block, first.max_faults_per_block);
  }
}

TEST(Selector, EdgeFaultDimensionsPreferredAsPositions) {
  // Clustered faulty links at one vertex: their swap dimensions must be
  // chosen as partition positions (turning them into super-edge
  // crossings) as far as the n-4 slots allow.
  const int n = 8;
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto f = clustered_edge_faults(g, 3, seed);
    const auto sel = select_partition_positions(n, f);
    std::set<int> chosen(sel.positions.begin(), sel.positions.end());
    for (const auto& e : f.edge_faults()) {
      int dim = -1;
      for (int d = 1; d < n; ++d)
        if (e.u.star_move(d) == e.v) dim = d;
      ASSERT_NE(dim, -1);
      EXPECT_TRUE(chosen.contains(dim)) << "dim " << dim << " not chosen";
    }
  }
}

TEST(Selector, EdgeDimPreferenceYieldsToVertexIsolation) {
  // Vertex-fault isolation (P1) must win slots over edge-dim
  // preference: with n-3 total mixed faults both goals still fit.
  const int n = 7;
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const FaultSet f = mixed_faults(g, 2, 2, seed);
    const auto sel = select_partition_positions(n, f);
    EXPECT_LE(sel.max_faults_per_block, 1) << seed;
  }
}

TEST(Selector, BeyondRegimeDegradesGracefully) {
  // More faults than n-3: the selector still returns n-4 positions and
  // reports how badly blocks collide instead of failing.
  const StarGraph g(5);
  const auto f = random_vertex_faults(g, 10, 9);
  const auto sel = select_partition_positions(5, f);
  EXPECT_EQ(sel.positions.size(), 1u);
  EXPECT_GE(sel.max_faults_per_block, 2);
}

}  // namespace
}  // namespace starring
