#include "stargraph/decomposition.hpp"

#include <cassert>

#include "graph/graph.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

/// True iff `p` is the canonical representative of its pattern with
/// free positions 0..r-1: the free symbols appear in ascending order.
bool canonical_rep(const Perm& p, int r) {
  for (int i = 0; i + 1 < r; ++i)
    if (p.get(i) > p.get(i + 1)) return false;
  return true;
}

/// The pattern with free positions 0..r-1 containing `p`.
SubstarPattern pattern_of(const Perm& p, int r) {
  SubstarPattern pat = SubstarPattern::whole(p.size());
  for (int i = r; i < p.size(); ++i) pat = pat.child(i, p.get(i));
  return pat;
}

unsigned resolve_threads(unsigned threads) {
  return threads == 0 ? default_threads() : threads;
}

/// The n!-cost part of every decomposition: unrank each vertex once and
/// collect the canonical representatives, in id order.  The flag pass
/// runs in parallel; the cheap ordinal-assigning sweep stays serial so
/// the output order never depends on the schedule.
std::vector<VertexId> canonical_reps(const StarGraph& g, int r,
                                     unsigned threads) {
  const std::size_t nv = g.num_vertices();
  std::vector<std::uint8_t> canon(nv, 0);
  parallel_for(0, nv, threads, [&](std::size_t id) {
    canon[id] = canonical_rep(g.vertex(static_cast<VertexId>(id)), r) ? 1 : 0;
  });
  std::vector<VertexId> reps;
  reps.reserve(nv / (r == 3 ? 6 : 24));
  for (std::size_t id = 0; id < nv; ++id)
    if (canon[id]) reps.push_back(static_cast<VertexId>(id));
  return reps;
}

}  // namespace

std::vector<std::vector<VertexId>> six_ring_decomposition(const StarGraph& g,
                                                          unsigned threads) {
  assert(g.n() >= 3);
  const unsigned workers = resolve_threads(threads);
  const std::vector<VertexId> reps = canonical_reps(g, 3, workers);
  std::vector<std::vector<VertexId>> rings(reps.size());
  parallel_for(0, reps.size(), workers, [&](std::size_t j) {
    // Walk the 6-cycle: alternating swaps of position 0 with 1 and 2.
    const Perm p = g.vertex(reps[j]);
    std::vector<VertexId> ring;
    ring.reserve(6);
    Perm cur = p;
    for (int step = 0; step < 6; ++step) {
      ring.push_back(cur.rank());
      cur = cur.star_move(step % 2 == 0 ? 1 : 2);
    }
    assert(cur == p);
    rings[j] = std::move(ring);
  });
  return rings;
}

std::vector<std::vector<VertexId>> block_ring_decomposition(
    const StarGraph& g, unsigned threads) {
  assert(g.n() >= 4);
  const unsigned workers = resolve_threads(threads);
  // One Hamiltonian cycle of the abstract 24-vertex block, reused for
  // every block through its local indexing.
  const SmallGraph block = SubstarPattern::whole(4).block_graph();
  const auto cycle = hamiltonian_cycle(block, 0);
  assert(cycle.has_value());
  const std::vector<VertexId> reps = canonical_reps(g, 4, workers);
  std::vector<std::vector<VertexId>> rings(reps.size());
  parallel_for(0, reps.size(), workers, [&](std::size_t j) {
    const MemberExpander expand(pattern_of(g.vertex(reps[j]), 4));
    std::vector<VertexId> ring;
    ring.reserve(24);
    for (const int local : *cycle)
      ring.push_back(expand.member_rank(static_cast<std::uint64_t>(local)));
    rings[j] = std::move(ring);
  });
  return rings;
}

std::vector<std::vector<VertexId>> faulty_block_ring_decomposition(
    const StarGraph& g, const FaultSet& faults, unsigned threads) {
  assert(g.n() >= 4);
  const unsigned workers = resolve_threads(threads);
  const SmallGraph block = SubstarPattern::whole(4).block_graph();
  const auto full_cycle = hamiltonian_cycle(block, 0);
  assert(full_cycle.has_value());
  const std::vector<VertexId> reps = canonical_reps(g, 4, workers);
  const std::vector<Perm> vfaults = faults.vertex_faults();
  std::vector<std::vector<VertexId>> rings(reps.size());
  parallel_for(0, reps.size(), workers, [&](std::size_t j) {
    const SubstarPattern pat = pattern_of(g.vertex(reps[j]), 4);
    std::uint32_t forbidden = 0;
    for (const Perm& f : vfaults)
      if (pat.contains(f)) forbidden |= 1u << pat.local_index(f);
    const std::vector<int>* cycle = nullptr;
    LongestCycleResult faulty_cycle;
    if (forbidden == 0) {
      cycle = &*full_cycle;
    } else {
      faulty_cycle = longest_cycle(block, forbidden);
      if (faulty_cycle.length < 3) return;  // ring destroyed: slot stays empty
      cycle = &faulty_cycle.cycle;
    }
    const MemberExpander expand(pat);
    std::vector<VertexId> ring;
    ring.reserve(cycle->size());
    for (const int local : *cycle)
      ring.push_back(expand.member_rank(static_cast<std::uint64_t>(local)));
    rings[j] = std::move(ring);
  });
  // Drop the blocks whose ring was destroyed (too damaged to cycle).
  std::size_t keep = 0;
  for (std::size_t j = 0; j < rings.size(); ++j)
    if (!rings[j].empty()) {
      if (keep != j) rings[keep] = std::move(rings[j]);
      ++keep;
    }
  rings.resize(keep);
  return rings;
}

}  // namespace starring
