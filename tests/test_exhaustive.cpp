// Exhaustive sweeps: not sampled, every instance in the class.
//
// These are the strongest statements the test suite makes: for small n
// the embedder is run against EVERY possible fault placement, so a
// regression anywhere in the construction cannot hide behind seeds.
#include <gtest/gtest.h>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "extensions/longest_path.hpp"

namespace starring {
namespace {

TEST(Exhaustive, S5EverySingleFault) {
  const StarGraph g(5);
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    FaultSet f;
    f.add_vertex(g.vertex(id));
    const auto res = embed_longest_ring(g, f);
    ASSERT_TRUE(res.has_value()) << "fault " << g.vertex(id).to_string();
    const auto rep = verify_healthy_ring(g, f, res->ring);
    ASSERT_TRUE(rep.valid) << rep.error;
    ASSERT_EQ(rep.length, 118u) << "fault " << g.vertex(id).to_string();
  }
}

TEST(Exhaustive, S5EveryFaultPair) {
  // All C(120, 2) = 7140 two-fault placements; |Fv| = 2 = n-3 is the
  // paper's regime boundary for S_5.
  const StarGraph g(5);
  std::size_t count = 0;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (VertexId b = a + 1; b < g.num_vertices(); ++b) {
      FaultSet f;
      f.add_vertex(g.vertex(a));
      f.add_vertex(g.vertex(b));
      const auto res = embed_longest_ring(g, f);
      ASSERT_TRUE(res.has_value()) << a << "," << b;
      ASSERT_EQ(res->ring.size(), 116u) << a << "," << b;
      // Full verification is O(ring); spot-verify a sixth of the pairs
      // to keep the sweep under a second, plus every 100th fully.
      if (count % 6 == 0) {
        const auto rep = verify_healthy_ring(g, f, res->ring);
        ASSERT_TRUE(rep.valid) << a << "," << b << ": " << rep.error;
      }
      ++count;
    }
  }
  EXPECT_EQ(count, 7140u);
}

TEST(Exhaustive, S6EverySingleFault) {
  const StarGraph g(6);
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    FaultSet f;
    f.add_vertex(g.vertex(id));
    const auto res = embed_longest_ring(g, f);
    ASSERT_TRUE(res.has_value()) << id;
    ASSERT_EQ(res->ring.size(), 718u) << id;
    if (id % 16 == 0) {
      const auto rep = verify_healthy_ring(g, f, res->ring);
      ASSERT_TRUE(rep.valid) << id << ": " << rep.error;
    }
  }
}

TEST(Exhaustive, S4EveryEdgeFault) {
  // Every one of the 36 edges of S_4 as the lone faulty link: the ring
  // keeps its full length 24.
  const StarGraph g(4);
  std::size_t edges = 0;
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    const Perm u = g.vertex(id);
    for (int d = 1; d < 4; ++d) {
      const Perm v = u.star_move(d);
      if (v.rank() < id) continue;
      ++edges;
      FaultSet f;
      f.add_edge(u, v);
      const auto res = embed_longest_ring(g, f);
      ASSERT_TRUE(res.has_value()) << u.to_string() << "-" << v.to_string();
      const auto rep = verify_healthy_ring(g, f, res->ring);
      ASSERT_TRUE(rep.valid) << rep.error;
      ASSERT_EQ(rep.length, 24u);
    }
  }
  EXPECT_EQ(edges, 36u);
}

TEST(Exhaustive, S5EveryVertexAsLongestPathSource) {
  // Longest-path extension, exhaustive over sources: every vertex of
  // S_5 as s against a fixed far target — a Hamiltonian path (120
  // vertices) for opposite-parity pairs, 119 for same-parity.
  const StarGraph g(5);
  const Perm t = g.vertex(g.num_vertices() - 1);
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    const Perm s = g.vertex(id);
    if (s == t) continue;
    const auto res = embed_longest_path(g, FaultSet{}, s, t);
    ASSERT_TRUE(res.has_value()) << s.to_string();
    const auto rep = verify_healthy_path(g, FaultSet{}, res->embed.ring);
    ASSERT_TRUE(rep.valid) << s.to_string() << ": " << rep.error;
    ASSERT_EQ(rep.length, s.parity() == t.parity() ? 119u : 120u)
        << s.to_string();
    ASSERT_EQ(g.vertex(res->embed.ring.front()), s);
    ASSERT_EQ(g.vertex(res->embed.ring.back()), t);
  }
}

}  // namespace
}  // namespace starring
