// Integration-grade unit tests for the Theorem 1 embedder: the headline
// claim (healthy ring of length n! - 2|Fv| for |Fv| <= n-3), verified
// by the independent checker across n, fault counts, and fault shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "core/ring_embedder.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"

namespace starring {
namespace {

void expect_theorem1(const StarGraph& g, const FaultSet& f,
                     const char* label) {
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value()) << label;
  const auto rep = verify_healthy_ring(g, f, res->ring);
  EXPECT_TRUE(rep.valid) << label << ": " << rep.error;
  EXPECT_EQ(rep.length, expected_ring_length(g.n(), f.num_vertex_faults()))
      << label;
}

TEST(Embedder, FaultFreeHamiltonianSmall) {
  for (int n = 3; n <= 7; ++n) {
    const StarGraph g(n);
    const auto res = embed_hamiltonian_cycle(g);
    ASSERT_TRUE(res.has_value()) << "S_" << n;
    const auto rep = verify_healthy_ring(g, FaultSet{}, res->ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, factorial(n));
  }
}

TEST(Embedder, S4SingleFault) {
  const StarGraph g(4);
  for (VertexId id = 0; id < 24; ++id) {
    FaultSet f;
    f.add_vertex(g.vertex(id));
    expect_theorem1(g, f, "S4 single fault");
  }
}

class Theorem1ParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem1ParamTest, RandomFaults) {
  const auto [n, nf] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const FaultSet f = random_vertex_faults(g, nf, seed);
    expect_theorem1(g, f, "random");
  }
}

TEST_P(Theorem1ParamTest, SamePartiteWorstCase) {
  const auto [n, nf] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const FaultSet f = same_partite_vertex_faults(g, nf, seed % 2 ? 1 : 0,
                                                  seed);
    expect_theorem1(g, f, "same partite");
    // In this regime the construction is worst-case optimal: it meets
    // the bipartite ceiling exactly.
    EXPECT_EQ(expected_ring_length(n, f.num_vertex_faults()),
              bipartite_upper_bound(g, f));
  }
}

TEST_P(Theorem1ParamTest, ClusteredNeighborFaults) {
  const auto [n, nf] = GetParam();
  if (nf > n - 1) GTEST_SKIP();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const FaultSet f = clustered_neighbor_faults(g, nf, seed);
    expect_theorem1(g, f, "clustered neighbours");
  }
}

TEST_P(Theorem1ParamTest, SubstarClusteredFaults) {
  const auto [n, nf] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const FaultSet f = substar_clustered_faults(g, nf, seed);
    expect_theorem1(g, f, "substar clustered");
  }
}

INSTANTIATE_TEST_SUITE_P(Theorem1Sweep, Theorem1ParamTest,
                         ::testing::Values(std::make_tuple(4, 1),
                                           std::make_tuple(5, 1),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(6, 1),
                                           std::make_tuple(6, 2),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(7, 4),
                                           std::make_tuple(8, 5)));

TEST(Embedder, MaxFaultsEveryN) {
  // |Fv| = n-3 exactly (the regime boundary).
  for (int n = 4; n <= 7; ++n) {
    const StarGraph g(n);
    const FaultSet f = random_vertex_faults(g, n - 3, 77);
    expect_theorem1(g, f, "max faults");
  }
}

TEST(Embedder, StatsArepopulated) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 5);
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stats.num_blocks, factorial(6) / 24);
  EXPECT_EQ(res->stats.faulty_blocks, 3);
  EXPECT_GE(res->stats.closure_attempts, 1);
}

TEST(Embedder, RingOrderIsCyclicallyHealthyAdjacency) {
  // Spot-check the emitted ring shape directly (not only through the
  // verifier): consecutive ids differ by one star move.
  const StarGraph g(5);
  FaultSet f;
  f.add_vertex(g.vertex(17));
  f.add_vertex(g.vertex(91));
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  const auto& ring = res->ring;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Perm a = g.vertex(ring[i]);
    const Perm b = g.vertex(ring[(i + 1) % ring.size()]);
    EXPECT_TRUE(a.adjacent(b)) << i;
  }
}

TEST(Embedder, TooSmallGraphsRejected) {
  EXPECT_FALSE(embed_longest_ring(StarGraph(1), FaultSet{}).has_value());
  EXPECT_FALSE(embed_longest_ring(StarGraph(2), FaultSet{}).has_value());
}

TEST(Embedder, S3WithFault) {
  // S_3 is a 6-cycle; one fault leaves a 5-path: no cycle at all.
  const StarGraph g(3);
  FaultSet f;
  f.add_vertex(g.vertex(0));
  EXPECT_FALSE(embed_longest_ring(g, f).has_value());
}

TEST(Embedder, ExpectedLengthHelper) {
  EXPECT_EQ(expected_ring_length(5, 0), 120u);
  EXPECT_EQ(expected_ring_length(5, 2), 116u);
  EXPECT_EQ(expected_ring_length(7, 4), 5040u - 8);
}

TEST(Embedder, BipartiteUpperBoundSplitsByParity) {
  const StarGraph g(5);
  FaultSet f;
  // Two even faults, one odd.
  int even_needed = 2;
  int odd_needed = 1;
  for (VertexId id = 0; id < g.num_vertices(); ++id) {
    const Perm p = g.vertex(id);
    if (p.parity() == 0 && even_needed > 0) {
      f.add_vertex(p);
      --even_needed;
    } else if (p.parity() == 1 && odd_needed > 0) {
      f.add_vertex(p);
      --odd_needed;
    }
  }
  EXPECT_EQ(bipartite_upper_bound(g, f), 120u - 4);
}

TEST(Embedder, SuperEdgeSabotage) {
  // White-box adversary: put every fault on crossing endpoints of ONE
  // super-edge of the hierarchy, starving the exit chooser there.  A
  // super-edge between adjacent 4-blocks has 3! = 6 crossings; n-3
  // faults can kill at most n-3 of them, and the construction must
  // route through the survivors (or choose a different block order).
  const int n = 7;
  const StarGraph g(n);
  // Pick two adjacent 4-patterns and fault one endpoint of each of the
  // first n-3 crossings.
  const auto a =
      SubstarPattern::whole(n).child(1, 4).child(2, 5).child(3, 6);
  const auto b =
      SubstarPattern::whole(n).child(1, 4).child(2, 5).child(3, 0);
  ASSERT_TRUE(SubstarPattern::adjacent(a, b));
  const auto crossings = superedge_endpoints(a, b);
  ASSERT_EQ(crossings.size(), 6u);
  FaultSet f;
  for (int k = 0; k < n - 3; ++k)
    f.add_vertex(crossings[static_cast<std::size_t>(k)].in_a);
  expect_theorem1(g, f, "super-edge sabotage");
}

TEST(Embedder, FaultsOnBothEndsOfCrossings) {
  // Harsher: alternate which side of the super-edge hosts the fault.
  const int n = 7;
  const StarGraph g(n);
  const auto a =
      SubstarPattern::whole(n).child(1, 0).child(2, 1).child(3, 2);
  const auto b =
      SubstarPattern::whole(n).child(1, 0).child(2, 1).child(3, 5);
  const auto crossings = superedge_endpoints(a, b);
  ASSERT_EQ(crossings.size(), 6u);
  FaultSet f;
  for (int k = 0; k < n - 3; ++k) {
    const auto& c = crossings[static_cast<std::size_t>(k)];
    f.add_vertex(k % 2 == 0 ? c.in_a : c.in_b);
  }
  expect_theorem1(g, f, "two-sided sabotage");
}

TEST(Embedder, FaultsPackedInOneBlockNeighborhood) {
  // All faults inside one 4-block and its ring neighbours would break
  // P1/P3 if Lemma 2 ignored them; the selector must spread them.
  const int n = 6;
  const StarGraph g(n);
  const auto block =
      SubstarPattern::whole(n).child(1, 3).child(2, 4);
  FaultSet f;
  for (std::uint64_t k = 0; k < 3; ++k)
    f.add_vertex(block.member(k * 7));
  expect_theorem1(g, f, "packed block");
}

TEST(Embedder, BeyondRegimeBestEffort) {
  // |Fv| > n-3: no guarantee, but the machinery degrades gracefully —
  // either a verified ring of n!-2|Fv| or a clean nullopt, never a
  // bogus result.
  const StarGraph g(6);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const FaultSet f = random_vertex_faults(g, 6, seed);  // 2x the regime
    const auto res = embed_longest_ring(g, f);
    if (!res) continue;  // allowed to fail out here
    const auto rep = verify_healthy_ring(g, f, res->ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, expected_ring_length(6, 6));
  }
}

TEST(Embedder, EveryVertexOnRingOnceEvenUnderFaults) {
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 3);
  const auto res = embed_longest_ring(g, f);
  ASSERT_TRUE(res.has_value());
  std::vector<int> count(factorial(6), 0);
  for (const VertexId id : res->ring) ++count[id];
  std::size_t skipped_healthy = 0;
  for (VertexId id = 0; id < factorial(6); ++id) {
    EXPECT_LE(count[id], 1);
    if (f.vertex_faulty(g.vertex(id)))
      EXPECT_EQ(count[id], 0);
    else if (count[id] == 0)
      ++skipped_healthy;
  }
  // Exactly one healthy vertex skipped per fault.
  EXPECT_EQ(skipped_healthy, f.num_vertex_faults());
}

}  // namespace
}  // namespace starring
