#include "graph/disjoint_paths.hpp"

#include <cassert>
#include <queue>

namespace starring {

namespace {

/// Minimal residual-arc max-flow network specialized for unit
/// capacities and node splitting.  Node ids: vertex v becomes in-node
/// 2v and out-node 2v+1.
struct FlowNet {
  struct Arc {
    std::uint64_t to;
    std::uint32_t rev;  // index of the reverse arc in adj[to]
    std::int8_t cap;
  };

  explicit FlowNet(std::uint64_t nodes) : adj(nodes) {}

  void add_arc(std::uint64_t from, std::uint64_t to, std::int8_t cap) {
    adj[from].push_back({to, static_cast<std::uint32_t>(adj[to].size()), cap});
    adj[to].push_back(
        {from, static_cast<std::uint32_t>(adj[from].size() - 1), 0});
  }

  /// One BFS augmentation of value 1; returns false when t is
  /// unreachable in the residual network.
  bool augment(std::uint64_t s, std::uint64_t t) {
    parent_node.assign(adj.size(), kNone);
    parent_arc.assign(adj.size(), 0);
    std::queue<std::uint64_t> q;
    q.push(s);
    parent_node[s] = s;
    while (!q.empty() && parent_node[t] == kNone) {
      const auto u = q.front();
      q.pop();
      for (std::uint32_t i = 0; i < adj[u].size(); ++i) {
        const Arc& a = adj[u][i];
        if (a.cap <= 0 || parent_node[a.to] != kNone) continue;
        parent_node[a.to] = u;
        parent_arc[a.to] = i;
        q.push(a.to);
      }
    }
    if (parent_node[t] == kNone) return false;
    for (std::uint64_t v = t; v != s; v = parent_node[v]) {
      Arc& a = adj[parent_node[v]][parent_arc[v]];
      a.cap -= 1;
      adj[a.to][a.rev].cap += 1;
    }
    return true;
  }

  static constexpr std::uint64_t kNone = ~0ULL;
  std::vector<std::vector<Arc>> adj;
  std::vector<std::uint64_t> parent_node;
  std::vector<std::uint32_t> parent_arc;
};

FlowNet build_network(const Graph& g, std::uint64_t s, std::uint64_t t,
                      int want) {
  FlowNet net(2 * g.num_vertices());
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
    // Interior vertices may carry one path; endpoints carry them all.
    const std::int8_t cap =
        (v == s || v == t) ? static_cast<std::int8_t>(want) : 1;
    net.add_arc(2 * v, 2 * v + 1, cap);
    for (const auto u : g.neighbors(v))
      net.add_arc(2 * v + 1, 2 * u, 1);
  }
  return net;
}

}  // namespace

std::vector<std::vector<std::uint64_t>> vertex_disjoint_paths(
    const Graph& g, std::uint64_t s, std::uint64_t t, int want) {
  assert(s < g.num_vertices() && t < g.num_vertices() && s != t);
  assert(want >= 0 && want <= 120);
  FlowNet net = build_network(g, s, t, want);
  int flow = 0;
  while (flow < want && net.augment(2 * s + 1, 2 * t)) ++flow;

  // Decompose the flow into paths: from s, repeatedly follow saturated
  // out-arcs (original arcs whose residual cap dropped to 0), consuming
  // them so each path takes a distinct first hop.
  std::vector<std::vector<std::uint64_t>> paths;
  paths.reserve(static_cast<std::size_t>(flow));
  // consumed flags per arc: mark by restoring cap to 1 as we walk.
  for (int p = 0; p < flow; ++p) {
    std::vector<std::uint64_t> path{s};
    std::uint64_t cur = s;
    while (cur != t) {
      bool moved = false;
      for (auto& a : net.adj[2 * cur + 1]) {
        // An original cross arc has an even target (another vertex's
        // in-node; the residual twin of our own in->out arc also sits
        // here, hence the self-exclusion) and was saturated by the flow
        // (cap == 0 with a positive reverse cap).
        if (a.cap == 0 && a.to % 2 == 0 && a.to != 2 * cur &&
            net.adj[a.to][a.rev].cap > 0) {
          a.cap = -1;  // consume so later paths skip it
          net.adj[a.to][a.rev].cap = 0;
          cur = a.to / 2;
          path.push_back(cur);
          moved = true;
          break;
        }
      }
      if (!moved) break;  // flow decomposition exhausted (shouldn't occur)
    }
    if (cur == t) paths.push_back(std::move(path));
  }
  return paths;
}

int local_vertex_connectivity(const Graph& g, std::uint64_t s,
                              std::uint64_t t, int cap) {
  FlowNet net = build_network(g, s, t, cap);
  int flow = 0;
  while (flow < cap && net.augment(2 * s + 1, 2 * t)) ++flow;
  return flow;
}

}  // namespace starring
