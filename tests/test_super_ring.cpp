// Unit tests for the R_r super-ring construction (Definitions 4-5,
// Lemma 3): validity, fault spreading (P1/P3), and the exclusion
// mechanism used by the Latifi baseline.
#include <gtest/gtest.h>

#include <set>

#include "core/partition_selector.hpp"
#include "core/super_ring.hpp"
#include "fault/generators.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

std::vector<int> positions_for(int n, const FaultSet& f) {
  return select_partition_positions(n, f).positions;
}

class SuperRingParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuperRingParamTest, ValidRingWithIsolatedFaults) {
  const auto [n, nf] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FaultSet f = random_vertex_faults(g, nf, seed);
    const auto pos = positions_for(n, f);
    const auto sr = build_block_ring(n, pos, f);
    ASSERT_TRUE(sr.has_value());
    EXPECT_TRUE(is_valid_super_ring(n, *sr));
    EXPECT_EQ(sr->r(), 4);
    EXPECT_EQ(sr->ring.size(), factorial(n) / 24);
    // P1: at most one fault per block.
    for (const auto& blk : sr->ring)
      EXPECT_LE(faults_in_pattern(blk, f), 1);
    // P3: no two consecutive faulty blocks.
    const auto m = sr->ring.size();
    for (std::size_t k = 0; k < m; ++k) {
      const bool a = faults_in_pattern(sr->ring[k], f) > 0;
      const bool b = faults_in_pattern(sr->ring[(k + 1) % m], f) > 0;
      EXPECT_FALSE(a && b) << "consecutive faulty blocks at " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultSweep, SuperRingParamTest,
                         ::testing::Values(std::make_tuple(5, 0),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(6, 0),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(7, 4),
                                           std::make_tuple(8, 5)));

TEST(SuperRing, CoversAllVerticesExactlyOnce) {
  const int n = 6;
  const auto sr = build_block_ring(n, positions_for(n, {}), FaultSet{});
  ASSERT_TRUE(sr.has_value());
  std::set<std::uint64_t> seen;
  for (const auto& blk : sr->ring)
    for (const auto& p : blk.members())
      EXPECT_TRUE(seen.insert(p.bits()).second);
  EXPECT_EQ(seen.size(), factorial(n));
}

TEST(SuperRing, RotationsProduceDifferentRings) {
  const int n = 6;
  const auto a = build_block_ring(n, positions_for(n, {}), FaultSet{}, 0);
  const auto b = build_block_ring(n, positions_for(n, {}), FaultSet{}, 1);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(is_valid_super_ring(n, *a));
  EXPECT_TRUE(is_valid_super_ring(n, *b));
  EXPECT_NE(a->ring.front().to_string() + a->ring[1].to_string(),
            b->ring.front().to_string() + b->ring[1].to_string());
}

TEST(SuperRing, SamePartiteFaultsStillSeparated) {
  const int n = 7;
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto f = same_partite_vertex_faults(g, n - 3, 0, seed);
    const auto sr = build_block_ring(n, positions_for(n, f), f);
    ASSERT_TRUE(sr.has_value());
    EXPECT_TRUE(is_valid_super_ring(n, *sr));
    const auto m = sr->ring.size();
    for (std::size_t k = 0; k < m; ++k) {
      EXPECT_LE(faults_in_pattern(sr->ring[k], f), 1);
      const bool a = faults_in_pattern(sr->ring[k], f) > 0;
      const bool b = faults_in_pattern(sr->ring[(k + 1) % m], f) > 0;
      EXPECT_FALSE(a && b);
    }
  }
}

TEST(SuperRing, DifPositionsAreFixedPositions) {
  // Every consecutive pair differs at exactly one of the partition
  // positions (the free positions are shared by construction).
  const int n = 6;
  const auto pos = positions_for(n, {});
  const auto sr = build_block_ring(n, pos, FaultSet{});
  ASSERT_TRUE(sr.has_value());
  const std::set<int> posset(pos.begin(), pos.end());
  const auto m = sr->ring.size();
  for (std::size_t k = 0; k < m; ++k) {
    int dif = -1;
    ASSERT_TRUE(SubstarPattern::adjacent(sr->ring[k], sr->ring[(k + 1) % m],
                                         &dif));
    EXPECT_TRUE(posset.contains(dif));
  }
}

TEST(SuperRing, ExcludeSupervertexDropsItsBlocks) {
  // Latifi mechanism: exclude an S_5 from S_7 — the ring must cover
  // 7! - 5! vertices and stay consecutive-adjacent.
  const int n = 7;
  FaultSet none;
  const auto pos = positions_for(n, none);
  // The excluded pattern must be one of the hierarchy's supervertices:
  // fix the first two positions.
  SubstarPattern excl = SubstarPattern::whole(n)
                            .child(pos[0], 0)
                            .child(pos[1], 1);
  ASSERT_EQ(excl.r(), 5);
  const auto sr = build_block_ring(n, pos, none, 0, &excl);
  ASSERT_TRUE(sr.has_value());
  EXPECT_TRUE(is_valid_super_ring(n, *sr, factorial(5)));
  for (const auto& blk : sr->ring)
    for (const auto& p : blk.members()) EXPECT_FALSE(excl.contains(p));
}

TEST(SuperRing, ExcludeBlockItself) {
  const int n = 6;
  FaultSet none;
  const auto pos = positions_for(n, none);
  SubstarPattern excl = SubstarPattern::whole(n)
                            .child(pos[0], 2)
                            .child(pos[1], 3);
  ASSERT_EQ(excl.r(), 4);
  const auto sr = build_block_ring(n, pos, none, 0, &excl);
  ASSERT_TRUE(sr.has_value());
  EXPECT_TRUE(is_valid_super_ring(n, *sr, factorial(4)));
}

TEST(SuperRing, ExcludeFirstLevelChild) {
  const int n = 6;
  FaultSet none;
  const auto pos = positions_for(n, none);
  SubstarPattern excl = SubstarPattern::whole(n).child(pos[0], 4);
  ASSERT_EQ(excl.r(), 5);
  const auto sr = build_block_ring(n, pos, none, 0, &excl);
  ASSERT_TRUE(sr.has_value());
  EXPECT_TRUE(is_valid_super_ring(n, *sr, factorial(5)));
}

TEST(SuperRing, InvalidChecksCatchCorruption) {
  // n = 6: blocks of different parents are mostly non-adjacent, so a
  // long-distance swap must break consecutive adjacency.  (At n = 5 the
  // single K_5 level makes every order valid — checked separately.)
  const int n = 6;
  auto sr = build_block_ring(n, positions_for(n, {}), FaultSet{});
  ASSERT_TRUE(sr.has_value());
  ASSERT_TRUE(is_valid_super_ring(n, *sr));
  SuperRing broken = *sr;
  std::swap(broken.ring[0], broken.ring[broken.ring.size() / 2]);
  EXPECT_FALSE(is_valid_super_ring(n, broken));
  SuperRing truncated = *sr;
  truncated.ring.pop_back();
  EXPECT_FALSE(is_valid_super_ring(n, truncated));
  SuperRing duplicated = *sr;
  duplicated.ring[1] = duplicated.ring[3];
  EXPECT_FALSE(is_valid_super_ring(n, duplicated));
}

TEST(SuperRing, AnyOrderValidAtSingleLevel) {
  // The K_5 observation itself: at n = 5 every cyclic order of the five
  // first-level blocks is a valid R_4.
  const int n = 5;
  auto sr = build_block_ring(n, positions_for(n, {}), FaultSet{});
  ASSERT_TRUE(sr.has_value());
  SuperRing shuffled = *sr;
  std::swap(shuffled.ring[0], shuffled.ring[2]);
  EXPECT_TRUE(is_valid_super_ring(n, shuffled));
}

}  // namespace
}  // namespace starring
