#include "fault/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace starring {

namespace {

std::mt19937_64 make_rng(std::uint64_t seed) { return std::mt19937_64(seed); }

VertexId random_vertex_id(const StarGraph& g, std::mt19937_64& rng) {
  std::uniform_int_distribution<VertexId> dist(0, g.num_vertices() - 1);
  return dist(rng);
}

}  // namespace

FaultSet random_vertex_faults(const StarGraph& g, int count,
                              std::uint64_t seed) {
  assert(static_cast<std::uint64_t>(count) < g.num_vertices());
  auto rng = make_rng(seed);
  FaultSet f;
  std::unordered_set<VertexId> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const VertexId id = random_vertex_id(g, rng);
    if (chosen.insert(id).second) f.add_vertex(g.vertex(id));
  }
  return f;
}

FaultSet same_partite_vertex_faults(const StarGraph& g, int count, int parity,
                                    std::uint64_t seed) {
  assert(parity == 0 || parity == 1);
  assert(static_cast<std::uint64_t>(count) < g.num_vertices() / 2);
  auto rng = make_rng(seed);
  FaultSet f;
  std::unordered_set<VertexId> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const VertexId id = random_vertex_id(g, rng);
    const Perm p = g.vertex(id);
    if (p.parity() != parity) continue;
    if (chosen.insert(id).second) f.add_vertex(p);
  }
  return f;
}

FaultSet clustered_neighbor_faults(const StarGraph& g, int count,
                                   std::uint64_t seed) {
  assert(count <= g.degree());
  auto rng = make_rng(seed);
  const Perm centre = g.vertex(random_vertex_id(g, rng));
  std::vector<int> dims(static_cast<std::size_t>(g.n() - 1));
  std::iota(dims.begin(), dims.end(), 1);
  std::shuffle(dims.begin(), dims.end(), rng);
  FaultSet f;
  for (int k = 0; k < count; ++k)
    f.add_vertex(centre.star_move(dims[static_cast<std::size_t>(k)]));
  return f;
}

FaultSet substar_clustered_faults(const StarGraph& g, int count,
                                  std::uint64_t seed) {
  auto rng = make_rng(seed);
  // Smallest m with m! >= count, at least 2 so the pattern is a real
  // substar (position 0 is always free).
  int m = 2;
  while (factorial(m) < static_cast<std::uint64_t>(count)) ++m;
  assert(m <= g.n());
  // Build a random S_m pattern: fix n-m random positions (never 0) to
  // the trailing symbols of a random permutation.
  const Perm base = g.vertex(random_vertex_id(g, rng));
  std::vector<int> positions(static_cast<std::size_t>(g.n() - 1));
  std::iota(positions.begin(), positions.end(), 1);
  std::shuffle(positions.begin(), positions.end(), rng);
  SubstarPattern pat = SubstarPattern::whole(g.n());
  for (int k = 0; k < g.n() - m; ++k) {
    const int pos = positions[static_cast<std::size_t>(k)];
    pat = pat.child(pos, base.get(pos));
  }
  // Draw `count` distinct members.
  std::vector<std::uint64_t> idx(pat.num_members());
  std::iota(idx.begin(), idx.end(), 0ULL);
  std::shuffle(idx.begin(), idx.end(), rng);
  FaultSet f;
  for (int k = 0; k < count; ++k)
    f.add_vertex(pat.member(idx[static_cast<std::size_t>(k)]));
  return f;
}

FaultSet random_edge_faults(const StarGraph& g, int count,
                            std::uint64_t seed) {
  assert(static_cast<std::uint64_t>(count) < g.num_edges());
  auto rng = make_rng(seed);
  std::uniform_int_distribution<int> dim(1, g.n() - 1);
  FaultSet f;
  std::unordered_set<EdgeFault, EdgeFaultHash> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const Perm u = g.vertex(random_vertex_id(g, rng));
    const Perm v = u.star_move(dim(rng));
    if (chosen.emplace(u, v).second) f.add_edge(u, v);
  }
  return f;
}

FaultSet clustered_edge_faults(const StarGraph& g, int count,
                               std::uint64_t seed) {
  assert(count <= g.degree());
  auto rng = make_rng(seed);
  const Perm centre = g.vertex(random_vertex_id(g, rng));
  std::vector<int> dims(static_cast<std::size_t>(g.n() - 1));
  std::iota(dims.begin(), dims.end(), 1);
  std::shuffle(dims.begin(), dims.end(), rng);
  FaultSet f;
  for (int k = 0; k < count; ++k)
    f.add_edge(centre, centre.star_move(dims[static_cast<std::size_t>(k)]));
  return f;
}

FaultSet mixed_faults(const StarGraph& g, int nv, int ne, std::uint64_t seed) {
  auto rng = make_rng(seed);
  FaultSet f;
  std::unordered_set<VertexId> chosen_v;
  while (static_cast<int>(chosen_v.size()) < nv) {
    const VertexId id = random_vertex_id(g, rng);
    if (chosen_v.insert(id).second) f.add_vertex(g.vertex(id));
  }
  std::uniform_int_distribution<int> dim(1, g.n() - 1);
  std::unordered_set<EdgeFault, EdgeFaultHash> chosen_e;
  while (static_cast<int>(chosen_e.size()) < ne) {
    const Perm u = g.vertex(random_vertex_id(g, rng));
    const Perm v = u.star_move(dim(rng));
    if (f.vertex_faulty(u) || f.vertex_faulty(v)) continue;
    if (chosen_e.emplace(u, v).second) f.add_edge(u, v);
  }
  return f;
}

}  // namespace starring
