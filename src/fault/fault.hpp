// Fault modelling for star-graph embedding experiments.
//
// The paper considers vertex faults Fv (processors down) and, in the
// results it builds on and its concluding corollary, edge faults Fe
// (links down).  A FaultSet carries both; the algorithms consult it
// through cheap membership tests.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "perm/permutation.hpp"

namespace starring {

/// An undirected faulty link, stored with the canonical (smaller-bits
/// first) orientation.
struct EdgeFault {
  Perm u;
  Perm v;

  EdgeFault(Perm a, Perm b) {
    if (b.bits() < a.bits()) std::swap(a, b);
    u = a;
    v = b;
  }

  friend bool operator==(const EdgeFault& a, const EdgeFault& b) {
    return a.u == b.u && a.v == b.v;
  }
};

struct EdgeFaultHash {
  std::size_t operator()(const EdgeFault& e) const {
    const std::size_t h1 = PermHash{}(e.u);
    const std::size_t h2 = PermHash{}(e.v);
    return h1 ^ (h2 + 0x9E3779B97F4A7C15ULL + (h1 << 6) + (h1 >> 2));
  }
};

/// A set of vertex and edge faults of one S_n.
class FaultSet {
 public:
  FaultSet() = default;

  void add_vertex(const Perm& p) { vertex_faults_.insert(p); }
  void add_edge(const Perm& u, const Perm& v) {
    edge_faults_.emplace(u, v);
  }

  bool vertex_faulty(const Perm& p) const {
    return vertex_faults_.contains(p);
  }
  bool edge_faulty(const Perm& u, const Perm& v) const {
    return edge_faults_.contains(EdgeFault(u, v));
  }

  std::size_t num_vertex_faults() const { return vertex_faults_.size(); }
  std::size_t num_edge_faults() const { return edge_faults_.size(); }
  bool empty() const { return vertex_faults_.empty() && edge_faults_.empty(); }

  std::vector<Perm> vertex_faults() const {
    return {vertex_faults_.begin(), vertex_faults_.end()};
  }
  std::vector<EdgeFault> edge_faults() const {
    return {edge_faults_.begin(), edge_faults_.end()};
  }

  /// The image of this fault set under the symbol relabeling g.  A
  /// relabeling is an automorphism of S_n, so the image describes an
  /// isomorphic faulty graph with the same fault counts; the service's
  /// canonical cache exploits this (service/canonical.hpp).
  FaultSet relabeled(const Perm& g) const {
    FaultSet out;
    for (const Perm& v : vertex_faults_) out.add_vertex(relabel(g, v));
    for (const EdgeFault& e : edge_faults_)
      out.add_edge(relabel(g, e.u), relabel(g, e.v));
    return out;
  }

 private:
  std::unordered_set<Perm, PermHash> vertex_faults_;
  std::unordered_set<EdgeFault, EdgeFaultHash> edge_faults_;
};

}  // namespace starring
