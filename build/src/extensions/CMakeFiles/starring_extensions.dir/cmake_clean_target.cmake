file(REMOVE_RECURSE
  "libstarring_extensions.a"
)
