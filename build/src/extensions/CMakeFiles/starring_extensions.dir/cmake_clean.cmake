file(REMOVE_RECURSE
  "CMakeFiles/starring_extensions.dir/longest_path.cpp.o"
  "CMakeFiles/starring_extensions.dir/longest_path.cpp.o.d"
  "CMakeFiles/starring_extensions.dir/mixed_faults.cpp.o"
  "CMakeFiles/starring_extensions.dir/mixed_faults.cpp.o.d"
  "CMakeFiles/starring_extensions.dir/pancyclic.cpp.o"
  "CMakeFiles/starring_extensions.dir/pancyclic.cpp.o.d"
  "libstarring_extensions.a"
  "libstarring_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starring_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
