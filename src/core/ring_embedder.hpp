// Theorem 1 of the paper: embedding a healthy ring of length
// n! - 2|Fv| into S_n with |Fv| <= n-3 vertex faults.
//
// Pipeline (mirrors the paper's proof structure):
//   1. select_partition_positions  — Lemma 2: positions whose partition
//      leaves at most one fault per S_4 block (property P1);
//   2. build_block_ring            — Lemma 3: an R_4 threading all
//      n!/24 blocks, fault-containing blocks spread apart (P3) and each
//      child connected to a ring neighbour (P2 via Lemma 1);
//   3. chain_blocks (this file)    — Lemmas 4-7: choose a healthy
//      entry/exit vertex pair per block, thread a healthy path of 24
//      vertices (healthy block) or 24 - 2*(faults inside) vertices
//      (faulty block) through each, and splice the paths with the
//      super-edge crossings into one ring.
//
// Where the paper argues existence through case analysis, step 3
// searches: per-block paths come from the exhaustive (memoized)
// BlockOracle and entry/exit choices are made greedily with full
// backtracking across blocks, so the driver finds an embedding whenever
// the choices the paper proves to exist are present.  Edge faults are
// handled uniformly (forbidden in-block edges and cross-edge choices),
// which yields both Tseng's edge-fault theorem and the paper's
// concluding mixed-fault corollary from the same machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/partition_selector.hpp"
#include "fault/fault.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {

struct EmbedOptions {
  SplitHeuristic heuristic = SplitHeuristic::kMaxSplitting;
  /// Restart attempts; each uses a different rotation of the first-level
  /// block ordering.
  int max_restarts = 8;
  /// Upper bound on cross-block backtrack pops per closure attempt.
  std::int64_t backtrack_budget = 1'000'000;
  /// Worker threads for the data-parallel phases (exit enumeration and
  /// vertex emission).  The embedding produced is identical for any
  /// value; 0 means one thread per hardware core.
  unsigned num_threads = 1;
  /// Populate the shared block-path cache with every fault-free
  /// Hamiltonian key before chaining (once per process), so no worker
  /// pays a cold in-block search.
  bool prewarm_oracle = false;
  /// Cooperative cancellation: when non-null and set, the search stops
  /// at the next restart / backtrack boundary and the embed returns
  /// nullopt.  The flag must outlive the call; the embedder only reads
  /// it (relaxed).  Deadline enforcement in the service flips it for
  /// in-flight computations past their budget.
  const std::atomic<bool>* cancel = nullptr;

  /// num_threads with the conventions applied: the STARRING_THREADS
  /// environment variable (parsed once per process) overrides the
  /// field, and 0 — from either source — means hardware concurrency.
  unsigned effective_threads() const;
};

struct EmbedStats {
  std::size_t num_blocks = 0;
  int faulty_blocks = 0;
  std::int64_t backtracks = 0;
  int restarts = 0;
  int closure_attempts = 0;
  /// Snapshot of the obs counters this embed call moved (sorted by
  /// name): phase wall times, oracle cache hits/misses, threads used.
  /// Empty unless the metrics layer is enabled (obs/metrics.hpp).
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

struct EmbedResult {
  /// The embedded healthy ring as vertex ids (Lehmer ranks), in cyclic
  /// order.
  std::vector<VertexId> ring;
  EmbedStats stats;
};

/// Length Theorem 1 promises: n! - 2 * |Fv|.
std::uint64_t expected_ring_length(int n, std::size_t num_vertex_faults);

/// The bipartite worst-case ceiling for a given fault population:
/// n! - 2 * max(faults among even perms, faults among odd perms).
/// Theorem 1 meets it exactly when all faults share one parity.
std::uint64_t bipartite_upper_bound(const StarGraph& g, const FaultSet& faults);

/// Embed the longest healthy ring the construction supports:
/// length n! - 2|Fv| avoiding every vertex fault and (extension) every
/// edge fault.  Supports n >= 3; the paper's guarantee regime is
/// n >= 4 with |Fv| + |Fe| <= n-3.  Returns nullopt when the
/// construction fails (outside the guarantee regime, or budget
/// exhausted).
std::optional<EmbedResult> embed_longest_ring(const StarGraph& g,
                                              const FaultSet& faults,
                                              const EmbedOptions& opts = {});

/// Fault-free Hamiltonian cycle of S_n via the same construction
/// (the substrate Tseng's and Latifi's algorithms also need).
std::optional<EmbedResult> embed_hamiltonian_cycle(const StarGraph& g,
                                                   const EmbedOptions& opts = {});

}  // namespace starring
