// Concluding-remark corollary of the paper: with |Fv| + |Fe| <= n-3
// mixed vertex and edge faults, S_n embeds a healthy ring of length
// n! - 2|Fv| (improving Tseng et al.'s mixed bound of n! - 4|Fv|).
//
// The unified engine already treats the two fault kinds orthogonally —
// vertex faults shrink per-block targets, edge faults constrain the
// in-block searches and the cross-edge choices — so the corollary is a
// guarantee statement about the same embedding call.  This module
// packages it with the corollary's precondition checks and the promised
// length, plus the baseline variant (per-fault loss 4) for E6.
#pragma once

#include <optional>

#include "core/ring_embedder.hpp"

namespace starring {

struct MixedFaultResult {
  EmbedResult embed;
  /// The corollary's promise: n! - 2|Fv|.
  std::uint64_t promised_length = 0;
};

/// True iff `faults` is inside the corollary's regime for S_n.
bool mixed_fault_regime_ok(const StarGraph& g, const FaultSet& faults);

/// Embed the n! - 2|Fv| ring under mixed faults.  Works outside the
/// regime too (best effort), but the promise only holds inside it.
std::optional<MixedFaultResult> embed_mixed_fault_ring(
    const StarGraph& g, const FaultSet& faults, const EmbedOptions& opts = {});

/// The pre-improvement mixed bound (n! - 4|Fv|) realized with the
/// baseline's per-fault loss, for the E6 comparison.
std::optional<MixedFaultResult> embed_mixed_fault_ring_baseline(
    const StarGraph& g, const FaultSet& faults, const EmbedOptions& opts = {});

}  // namespace starring
