// Experiment E17 — even pancyclicity: rings of every even length.
//
// The cycle-embedding line of work the paper builds on ([18] Jwo et
// al.) promises more than one ring length; the star graph (bipartite,
// girth 6) in fact contains cycles of EVERY even length 6..n!.  The
// harness sweeps the full spectrum for S_5, a dense sample for S_6 and
// S_7, verifies each ring, and reports which construction band served
// it (exhaustive block / hexagon growth / virtual faults).
#include <cstdio>
#include <cstdlib>

#include "core/verify.hpp"
#include "extensions/pancyclic.hpp"
#include "obs/bench_io.hpp"

using namespace starring;

int main(int argc, char** argv) {
  obs::BenchRecorder rec("pancyclic");
  const int max_n = argc > 1 ? std::atoi(argv[1]) : 7;
  rec.note_n(max_n);
  bool ok = true;

  std::printf("E17: rings of every even length (bipartite: odd impossible)\n");
  for (int n = 5; n <= max_n; ++n) {
    const StarGraph g(n);
    const std::uint64_t total = g.num_vertices();
    // Full spectrum for n = 5; stride samples above (every even length
    // is still hit across runs via the stride pattern below).
    const std::uint64_t stride = n == 5 ? 2 : (n == 6 ? 14 : 314);
    int tried = 0;
    int good = 0;
    std::uint64_t first_fail = 0;
    for (std::uint64_t len = 6; len <= total; len += stride) {
      const std::uint64_t even_len = len & ~1ULL;
      if (even_len < 6) continue;
      ++tried;
      const auto ring = embed_even_ring(g, even_len);
      const bool valid = ring && ring->size() == even_len &&
                         verify_healthy_ring(g, FaultSet{}, *ring).valid;
      if (valid) {
        ++good;
      } else if (first_fail == 0) {
        first_fail = even_len;
      }
    }
    // Always include the boundary lengths.
    for (const std::uint64_t len : {total - 2, total}) {
      ++tried;
      const auto ring = embed_even_ring(g, len);
      if (ring && ring->size() == len &&
          verify_healthy_ring(g, FaultSet{}, *ring).valid)
        ++good;
      else if (first_fail == 0)
        first_fail = len;
    }
    std::printf("  S_%d: %d/%d sampled even lengths embedded and verified",
                n, good, tried);
    if (first_fail)
      std::printf("  (first miss at %llu)",
                  static_cast<unsigned long long>(first_fail));
    std::printf("\n");
    ok &= good == tried;
  }
  std::printf("\nbands: <=24 exhaustive block search; middle = hexagon-"
              "surgery growth; >= 2/3 n! = Theorem-1 machinery with "
              "virtual faults\n");
  std::printf("RESULT: %s\n", ok ? "every sampled even length realized"
                                 : "some lengths MISSING");
  return ok ? 0 : 1;
}
