#include "service/service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "core/verify.hpp"
#include "stargraph/star_graph.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

obs::Counter& c_requests() {
  static obs::Counter& c = obs::counter("svc.requests");
  return c;
}
obs::Counter& c_rejected() {
  static obs::Counter& c = obs::counter("svc.rejected");
  return c;
}
obs::Counter& c_hits() {
  static obs::Counter& c = obs::counter("svc.cache_hits");
  return c;
}
obs::Counter& c_misses() {
  static obs::Counter& c = obs::counter("svc.cache_misses");
  return c;
}
obs::Counter& c_batches() {
  static obs::Counter& c = obs::counter("svc.batches");
  return c;
}
obs::Counter& c_batch_size_max() {
  static obs::Counter& c = obs::counter("svc.batch_size_max");
  return c;
}
obs::Counter& c_queue_depth_max() {
  static obs::Counter& c = obs::counter("svc.queue_depth_max");
  return c;
}
obs::Counter& c_embed_failures() {
  static obs::Counter& c = obs::counter("svc.embed_failures");
  return c;
}
obs::Counter& c_verify_failures() {
  static obs::Counter& c = obs::counter("svc.verify_failures");
  return c;
}
obs::Counter& c_verified() {
  static obs::Counter& c = obs::counter("svc.verified");
  return c;
}
obs::Counter& c_timeouts() {
  static obs::Counter& c = obs::counter("svc.timeouts");
  return c;
}
obs::Counter& c_throttled() {
  static obs::Counter& c = obs::counter("svc.throttled");
  return c;
}

ServiceResponse error_response(std::uint64_t id, std::string reason) {
  ServiceResponse r;
  r.id = id;
  r.status = ServiceStatus::kError;
  r.reason = std::move(reason);
  return r;
}

ServiceResponse timeout_response(std::uint64_t id, std::string reason) {
  ServiceResponse r;
  r.id = id;
  r.status = ServiceStatus::kTimeout;
  r.reason = std::move(reason);
  return r;
}

ServiceResponse throttled_response(std::uint64_t id) {
  ServiceResponse r;
  r.id = id;
  r.status = ServiceStatus::kThrottled;
  r.reason = "tenant quota exhausted";
  return r;
}

}  // namespace

EmbedService::TenantState& EmbedService::tenant_state(
    const std::string& name) {
  // The wire allows an absent tenant line; such requests are bucketed
  // into `default` rather than riding quota-free.
  const std::string* key = name.empty() ? nullptr : &name;
  static const std::string kDefault = "default";
  static const std::string kOther = "other";
  if (key == nullptr) key = &kDefault;
  auto it = tenants_.find(*key);
  if (it == tenants_.end()) {
    // Cap the registry: tenant names become counter names, and an
    // adversarial client must not be able to grow it without bound.
    if (tenants_.size() >= opts_.max_tenants && *key != kOther)
      return tenant_state(kOther);
    const double burst = opts_.tenant_burst > 0
                             ? opts_.tenant_burst
                             : std::max(1.0, opts_.tenant_rate);
    it = tenants_
             .emplace(*key, std::make_unique<TenantState>(
                                *key, burst,
                                std::chrono::steady_clock::now()))
             .first;
    rr_order_.push_back(it->second.get());
  }
  return *it->second;
}

bool EmbedService::quota_admit(TenantState& t,
                               std::chrono::steady_clock::time_point now) {
  if (opts_.tenant_rate <= 0) return true;  // quotas off
  const double burst = opts_.tenant_burst > 0
                           ? opts_.tenant_burst
                           : std::max(1.0, opts_.tenant_rate);
  const double dt =
      std::chrono::duration<double>(now - t.last_refill).count();
  if (dt > 0) {
    t.tokens = std::min(burst, t.tokens + dt * opts_.tenant_rate);
    t.last_refill = now;
  }
  if (t.tokens < 1.0) return false;
  t.tokens -= 1.0;
  return true;
}

EmbedService::EmbedService(ServiceOptions opts)
    : opts_(opts), cache_(opts.cache_capacity) {
  scheduler_ = std::thread([this] { scheduler_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

EmbedService::~EmbedService() {
  drain();
  if (scheduler_.joinable()) scheduler_.join();
  {
    const std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::uint64_t EmbedService::watch_deadline(
    std::chrono::steady_clock::time_point deadline,
    std::atomic<bool>* cancel) {
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(watch_mu_);
    id = next_watch_id_++;
    watches_.push_back({id, Watch{deadline, cancel}});
  }
  watch_cv_.notify_one();
  return id;
}

void EmbedService::unwatch(std::uint64_t id) {
  // Holding watch_mu_ for the erase guarantees the watchdog is not
  // mid-flip on this entry when we return — the flag may be freed.
  const std::lock_guard<std::mutex> lock(watch_mu_);
  for (auto it = watches_.begin(); it != watches_.end(); ++it) {
    if (it->first == id) {
      watches_.erase(it);
      return;
    }
  }
}

void EmbedService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!watch_stop_) {
    if (watches_.empty()) {
      watch_cv_.wait(lock);
      continue;
    }
    auto earliest = watches_.front().second.deadline;
    for (const auto& [id, w] : watches_)
      earliest = std::min(earliest, w.deadline);
    watch_cv_.wait_until(lock, earliest);
    const auto now = std::chrono::steady_clock::now();
    for (auto it = watches_.begin(); it != watches_.end();) {
      if (now >= it->second.deadline) {
        it->second.cancel->store(true, std::memory_order_relaxed);
        it = watches_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool EmbedService::submit(ServiceRequest req, Callback on_done, bool wait) {
  // `admitted` is stamped at entry, before any backpressure wait: the
  // latency histogram, the svc.request root span, and the deadline
  // budget all cover the full submit-to-response interval the caller
  // experienced (a request that waited out its budget at admission is
  // shed unprocessed).
  Pending p;
  p.req = std::move(req);
  p.done = std::move(on_done);
  p.admitted = std::chrono::steady_clock::now();
  if (p.req.deadline_ms > 0) {
    p.deadline = p.admitted + std::chrono::milliseconds(p.req.deadline_ms);
    p.has_deadline = true;
  }
  if (obs::trace::enabled()) {
    // Adopt a propagated wire context so this request's spans land in
    // the originator's trace; otherwise the request roots a new one.
    p.span.trace_id = p.req.trace_id != 0 ? p.req.trace_id
                                          : obs::trace::new_trace_id();
    p.span.span_id = obs::trace::new_span_id();
  }
  const obs::trace::Context root = p.span;
  const auto admitted_at = p.admitted;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (wait) {
      admit_cv_.wait(lock, [this] {
        return total_queued_ < opts_.queue_depth || draining_;
      });
    }
    if (draining_ || total_queued_ >= opts_.queue_depth) {
      c_rejected().add();
      return false;
    }
    TenantState& t = tenant_state(p.req.tenant);
    t.requests.add();
    if (!quota_admit(t, std::chrono::steady_clock::now())) {
      // Quota bounce: an immediate terminal response, not an enqueue.
      // Delivered below outside the lock; returns true because the
      // caller's request did reach a terminal status.
      t.throttled.add();
      c_throttled().add();
      lock.unlock();
      ServiceResponse r = throttled_response(p.req.id);
      if (p.done) {
        p.done(std::move(r));
      } else {
        {
          const std::lock_guard<std::mutex> relock(mu_);
          responses_.push_back(std::move(r));
        }
        resp_cv_.notify_all();
      }
      return true;
    }
    p.tenant = &t;
    t.queue.push_back(std::move(p));
    ++total_queued_;
    inflight_.fetch_add(1, std::memory_order_relaxed);
    c_queue_depth_max().record_max(
        static_cast<std::int64_t>(total_queued_));
  }
  // Admission span: time spent blocked on queue backpressure (plus the
  // queue push itself).  Rejected submissions record nothing — their
  // trace never delivers a svc.request root.
  if (root.valid()) {
    obs::trace::emit("svc.admit", root.trace_id, obs::trace::new_span_id(),
                     root.span_id, admitted_at,
                     std::chrono::steady_clock::now());
  }
  c_requests().add();
  work_cv_.notify_one();
  return true;
}

std::optional<ServiceResponse> EmbedService::next_response() {
  std::unique_lock<std::mutex> lock(mu_);
  resp_cv_.wait(lock,
                [this] { return !responses_.empty() || stopped_; });
  if (responses_.empty()) return std::nullopt;
  ServiceResponse r = std::move(responses_.front());
  responses_.pop_front();
  return r;
}

void EmbedService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  admit_cv_.notify_all();
  work_cv_.notify_all();
}

std::vector<EmbedService::Pending> EmbedService::take_batch() {
  std::vector<Pending> batch;
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this] { return total_queued_ > 0 || draining_; });
  if (total_queued_ == 0) return batch;  // draining with nothing left

  // Deficit round robin over the tenant queues: cycle the tenants from
  // the cursor, each backlogged tenant earning drr_quantum requests of
  // service per visit, until the batch is full or no tenant can
  // contribute.  The first selected request pins the batch's dimension
  // (compatible = same dimension: those requests share StarGraph
  // sizing, oracle working set, and — via canonical dedup — possibly
  // embeddings); later visits take only matching-n requests, skipping
  // over a tenant's mismatched entries without reordering them — a
  // tenant stuck on a mismatched dimension keeps accruing deficit and
  // is compensated when a batch of its dimension forms.
  int n = -1;
  const std::size_t tenants = rr_order_.size();
  const std::int64_t quantum =
      static_cast<std::int64_t>(std::max<std::size_t>(1, opts_.drr_quantum));
  std::size_t last_served = rr_cursor_;
  bool progress = true;
  while (progress && batch.size() < opts_.batch_max) {
    progress = false;
    for (std::size_t k = 0; k < tenants && batch.size() < opts_.batch_max;
         ++k) {
      const std::size_t ti = (rr_cursor_ + k) % tenants;
      TenantState& t = *rr_order_[ti];
      if (t.queue.empty()) {
        t.deficit = 0;  // classic DRR: idle tenants accrue no credit
        continue;
      }
      t.deficit += quantum;
      while (t.deficit > 0 && batch.size() < opts_.batch_max) {
        auto it = t.queue.begin();
        if (n >= 0)
          while (it != t.queue.end() && it->req.n != n) ++it;
        if (it == t.queue.end()) break;
        if (n < 0) n = it->req.n;
        batch.push_back(std::move(*it));
        t.queue.erase(it);
        --total_queued_;
        --t.deficit;
        last_served = ti;
        progress = true;
      }
      if (t.queue.empty()) t.deficit = 0;
    }
  }
  rr_cursor_ = tenants == 0 ? 0 : (last_served + 1) % tenants;
  lock.unlock();
  admit_cv_.notify_all();
  return batch;
}

CanonicalRingCache::RingPtr EmbedService::compute_canonical(
    int n, const CanonicalForm& canon, const std::atomic<bool>* cancel) {
  // Chaos: refuse the embedding outright, exercising the same branch a
  // genuine pipeline failure takes.
  if (FAILPOINT("svc.embed")) {
    c_embed_failures().add();
    return nullptr;
  }
  const StarGraph g(n);
  EmbedOptions eopts = opts_.embed;
  eopts.cancel = cancel;
  const auto res = embed_longest_ring(g, canon.faults, eopts);
  if (!res.has_value()) {
    // A cooperatively cancelled search is a timeout, not a pipeline
    // failure; only the latter counts as svc.embed_failures.
    if (cancel == nullptr || !cancel->load(std::memory_order_relaxed))
      c_embed_failures().add();
    return nullptr;
  }
  auto ring = std::make_shared<const std::vector<VertexId>>(
      std::move(res->ring));
  cache_.insert(canon.key, ring);
  return ring;
}

void EmbedService::seed_cache(const std::string& key,
                              std::vector<VertexId> ring) {
  cache_.insert(key,
                std::make_shared<const std::vector<VertexId>>(std::move(ring)));
}

void EmbedService::deliver(Pending& p, ServiceResponse resp,
                           std::chrono::steady_clock::time_point now) {
  latency_.record(now - p.admitted);
  if (p.tenant != nullptr) {
    p.tenant->latency.record(now - p.admitted);
    if (resp.status == ServiceStatus::kOk)
      p.tenant->ok.add();
    else if (resp.status == ServiceStatus::kTimeout)
      p.tenant->timeouts.add();
  }
  // Emit the request's root span now that every child has closed: the
  // whole admitted-to-delivered interval.  A request that arrived with
  // a wire trace context parents under the originator's span (the
  // proxy's forward attempt); otherwise this is the root of its trace.
  if (p.span.valid())
    obs::trace::emit("svc.request", p.span.trace_id, p.span.span_id,
                     p.req.trace_id != 0 ? p.req.parent_span_id : 0,
                     p.admitted, now);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  if (p.done) {
    p.done(std::move(resp));
  } else {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      responses_.push_back(std::move(resp));
    }
    resp_cv_.notify_all();
  }
}

ServiceResponse EmbedService::finish(const ServiceRequest& req,
                                     const CanonicalForm& canon,
                                     const CanonicalRingCache::RingPtr& ring,
                                     bool cache_hit) {
  if (req.n < 3 || req.n > kMaxN)
    return error_response(req.id, "unsupported dimension");
  if (ring == nullptr)
    return error_response(
        req.id, "embedding failed (outside the guarantee regime?)");
  ServiceResponse resp;
  resp.id = req.id;
  resp.status = ServiceStatus::kOk;
  resp.cache_hit = cache_hit;
  {
    obs::trace::ScopedSpan span("svc.relabel");
    resp.ring = relabel_ring(*ring, inverse_of(canon.to_canonical), req.n);
  }
  if (req.verify || (cache_hit && opts_.verify_on_hit)) {
    obs::trace::ScopedSpan span("svc.verify");
    const StarGraph g(req.n);
    const RingReport report = verify_healthy_ring(g, req.faults, resp.ring);
    if (!report.valid) {
      c_verify_failures().add();
      return error_response(req.id, "verifier: " + report.error);
    }
    c_verified().add();
    resp.verified = true;
  }
  return resp;
}

void EmbedService::run_batch(std::vector<Pending> batch) {
  obs::ScopedPhase phase("svc_batch");
  // The batch itself is its own trace (the scheduler has no request
  // context); per-request spans below parent into each request's trace
  // via explicit ContextGuards, not into this one.
  obs::trace::ScopedSpan batch_span("svc.batch");
  c_batches().add();
  c_batch_size_max().record_max(static_cast<std::int64_t>(batch.size()));

  // Close out each request's queue-wait interval: admitted on the
  // submitter's thread, picked up here.
  const auto batch_start = std::chrono::steady_clock::now();
  for (const Pending& p : batch) {
    if (p.span.valid())
      obs::trace::emit("svc.queue_wait", p.span.trace_id,
                       obs::trace::new_span_id(), p.span.span_id,
                       p.admitted, batch_start);
  }

  // Shed requests that waited out their budget in the queue before
  // spending any work on them.
  {
    std::vector<Pending> live;
    live.reserve(batch.size());
    for (Pending& p : batch) {
      if (p.expired(batch_start)) {
        c_timeouts().add();
        deliver(p,
                timeout_response(p.req.id, "deadline expired in queue"),
                batch_start);
      } else {
        live.push_back(std::move(p));
      }
    }
    batch = std::move(live);
    if (batch.empty()) return;
  }

  const int n = batch.front().req.n;
  struct Slot {
    CanonicalForm canon;
    CanonicalRingCache::RingPtr ring;
    bool hit = false;
  };
  std::vector<Slot> slots(batch.size());
  std::vector<std::size_t> compute;  // slot index owning each distinct miss
  std::vector<ServiceResponse> out(batch.size());
  try {
    if (FAILPOINT("svc.batch"))
      throw failpoint::FailpointError("svc.batch");

    // Canonicalize and consult the cache; each distinct canonical
    // instance is computed at most once per batch, so intra-batch
    // duplicates are hits even when the cache was cold.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const obs::trace::ContextGuard as_request(batch[i].span);
      {
        obs::trace::ScopedSpan span("svc.canonicalize");
        slots[i].canon = canonicalize(n, batch[i].req.faults);
      }
      {
        obs::trace::ScopedSpan span("svc.cache_probe");
        slots[i].ring = cache_.lookup(slots[i].canon.key);
      }
      if (slots[i].ring != nullptr) {
        slots[i].hit = true;
        continue;
      }
      bool owned = false;
      for (const std::size_t j : compute) {
        if (slots[j].canon.key == slots[i].canon.key) {
          slots[i].hit = true;  // served by slot j's computation
          owned = true;
          break;
        }
      }
      if (!owned) compute.push_back(i);
    }

    // One cancel flag per distinct computation, armed with the latest
    // deadline among the requests sharing it — and only when every
    // sharer carries a deadline, so the flag can never fire while an
    // unbudgeted request still wants the result.
    std::vector<std::atomic<bool>> cancels(compute.size());
    for (auto& c : cancels) c.store(false, std::memory_order_relaxed);
    std::vector<std::uint64_t> watch_ids(compute.size(), 0);
    for (std::size_t c = 0; c < compute.size(); ++c) {
      bool all_deadlined = true;
      auto latest = std::chrono::steady_clock::time_point::min();
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (slots[i].canon.key != slots[compute[c]].canon.key) continue;
        if (!batch[i].has_deadline) {
          all_deadlined = false;
          break;
        }
        latest = std::max(latest, batch[i].deadline);
      }
      if (all_deadlined)
        watch_ids[c] = watch_deadline(latest, &cancels[c]);
    }

    // Compute the distinct misses.  A single miss keeps the pipeline's
    // own data parallelism; several misses fan out one embedding per
    // pool lane instead (nested regions run inline).  n < 3 has no
    // embedding to compute; finish() reports it per request.
    const unsigned threads = opts_.embed.effective_threads();
    try {
      if (n >= 3 && compute.size() == 1) {
        const obs::trace::ContextGuard as_request(
            batch[compute.front()].span);
        obs::trace::ScopedSpan span("svc.embed");
        Slot& s = slots[compute.front()];
        s.ring = compute_canonical(n, s.canon, &cancels.front());
      } else if (n >= 3 && !compute.empty()) {
        parallel_for(0, compute.size(), threads, [&](std::size_t k) {
          const obs::trace::ContextGuard as_request(batch[compute[k]].span);
          obs::trace::ScopedSpan span("svc.embed");
          Slot& s = slots[compute[k]];
          s.ring = compute_canonical(n, s.canon, &cancels[k]);
        });
      }
    } catch (...) {
      // The watchdog must stop referencing the flags before their
      // storage unwinds.
      for (const std::uint64_t id : watch_ids)
        if (id != 0) unwatch(id);
      throw;
    }
    for (const std::uint64_t id : watch_ids)
      if (id != 0) unwatch(id);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      (slots[i].hit ? c_hits() : c_misses()).add();
      if (slots[i].hit && batch[i].tenant != nullptr)
        batch[i].tenant->hits.add();
    }
    // Batch-local duplicates of a miss share the owner's ring.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (slots[i].ring != nullptr || !slots[i].hit) continue;
      for (const std::size_t j : compute)
        if (slots[j].canon.key == slots[i].canon.key) {
          slots[i].ring = slots[j].ring;
          break;
        }
    }

    // Relabel into each caller's frame and verify as asked —
    // per-request work, fanned out across the pool.
    parallel_for(0, batch.size(), threads, [&](std::size_t i) {
      const obs::trace::ContextGuard as_request(batch[i].span);
      out[i] = finish(batch[i].req, slots[i].canon, slots[i].ring,
                      slots[i].hit);
    });
  } catch (const std::exception& e) {
    // Deliver something for every request even if a stage threw
    // (allocation failure, injected fault, ...): callers blocked on
    // these ids.
    for (std::size_t i = 0; i < batch.size(); ++i)
      out[i] = error_response(batch[i].req.id,
                              std::string("internal: ") + e.what());
  }

  // Response-delay chaos site.  Armed in throw mode it must not unwind
  // past delivery — callers block on these ids — so it is absorbed.
  try {
    if (FAILPOINT("svc.respond")) {
      // error mode: delivery itself has no failure branch to take.
    }
  } catch (const failpoint::FailpointError&) {
  }

  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Strict deadline semantics, judged at delivery: a result computed
    // (or delayed) past its budget goes out as `status timeout` — the
    // ring, if any, stays cached for future callers.
    if (batch[i].expired(now) &&
        out[i].status != ServiceStatus::kTimeout) {
      c_timeouts().add();
      out[i] = timeout_response(batch[i].req.id, "deadline exceeded");
    }
    deliver(batch[i], std::move(out[i]), now);
  }
}

void EmbedService::scheduler_loop() {
  while (true) {
    std::vector<Pending> batch = take_batch();
    if (batch.empty()) break;  // drained
    run_batch(std::move(batch));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  resp_cv_.notify_all();
}

ServiceResponse EmbedService::process_now(const ServiceRequest& req) {
  obs::ScopedPhase phase("svc_request");
  // Synchronous path: the whole request is one scope, so the root and
  // its children all come from plain ScopedSpan nesting.  The explicit
  // parent context adopts a propagated wire trace (invalid when the
  // request carried none — then this roots a fresh trace, as before).
  obs::trace::ScopedSpan root(
      "svc.request",
      obs::trace::Context{req.trace_id, req.parent_span_id});
  struct InflightGuard {
    std::atomic<std::uint64_t>& n;
    explicit InflightGuard(std::atomic<std::uint64_t>& c) : n(c) {
      n.fetch_add(1, std::memory_order_relaxed);
    }
    ~InflightGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard(inflight_);
  c_requests().add();
  const auto admitted = std::chrono::steady_clock::now();
  // The synchronous path charges the same tenant buckets as the queue:
  // process_now is not a quota bypass.
  TenantState* tstate = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    TenantState& t = tenant_state(req.tenant);
    t.requests.add();
    if (!quota_admit(t, admitted)) {
      t.throttled.add();
      c_throttled().add();
      return throttled_response(req.id);
    }
    tstate = &t;
  }
  const bool budgeted = req.deadline_ms > 0;
  const auto deadline =
      admitted + std::chrono::milliseconds(budgeted ? req.deadline_ms : 0);
  if (req.n < 3 || req.n > kMaxN)
    return error_response(req.id, "unsupported dimension");
  CanonicalForm canon;
  {
    obs::trace::ScopedSpan span("svc.canonicalize");
    canon = canonicalize(req.n, req.faults);
  }
  CanonicalRingCache::RingPtr ring;
  {
    obs::trace::ScopedSpan span("svc.cache_probe");
    ring = cache_.lookup(canon.key);
  }
  const bool hit = ring != nullptr;
  (hit ? c_hits() : c_misses()).add();
  if (hit) tstate->hits.add();
  if (!hit) {
    obs::trace::ScopedSpan span("svc.embed");
    std::atomic<bool> cancel{false};
    const std::uint64_t watch =
        budgeted ? watch_deadline(deadline, &cancel) : 0;
    try {
      ring = compute_canonical(req.n, canon, budgeted ? &cancel : nullptr);
    } catch (...) {
      if (watch != 0) unwatch(watch);
      throw;
    }
    if (watch != 0) unwatch(watch);
  }
  ServiceResponse resp;
  if (budgeted && std::chrono::steady_clock::now() >= deadline) {
    c_timeouts().add();
    resp = timeout_response(req.id, "deadline exceeded");
  } else {
    resp = finish(req, canon, ring, hit);
  }
  tstate->latency.record(std::chrono::steady_clock::now() - admitted);
  if (resp.status == ServiceStatus::kOk)
    tstate->ok.add();
  else if (resp.status == ServiceStatus::kTimeout)
    tstate->timeouts.add();
  return resp;
}

}  // namespace starring
