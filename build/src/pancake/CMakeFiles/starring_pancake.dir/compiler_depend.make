# Empty compiler generated dependencies file for starring_pancake.
# This may be replaced when dependencies are built.
