#!/usr/bin/env python3
"""Chaos smoke for the reliability layer, driven over the wire.

Two stages against a spawned starringd:

  stdio  — a failpoint storm (STARRING_FAILPOINTS) over mixed requests,
           some deadlined.  Asserts: every request reaches a terminal
           status, FAIL re-arms (and rejects garbage) live, PING works
           mid-storm, at least three distinct failpoint sites fired,
           svc.failpoints_fired equals the sum of the fail.<site>
           counters, and — after FAIL clear — a verify sweep of every
           instance comes back ok+verified with zero svc.verify_failures
           (the cache survived the storm uncorrupted).

  tcp    — connection-cap bounce (`status rejected`), then a slow-client
           eviction: a reader that never drains its socket must be cut
           loose within the write timeout (svc.evicted_conns rises) while
           a healthy connection keeps scraping STATS.  Ends with SIGTERM
           and a clean, bounded drain (exit code 0).

The driver is deliberately independent of the C++ protocol code: a
second implementation of the framing that would catch asymmetric
serialization bugs.  Run under a hard wall-clock `timeout` in CI; any
hang is a failed gate.

Usage: chaos_smoke.py <path-to-starringd> [--port N]
"""

import argparse
import os
import random
import signal
import socket
import subprocess
import sys
import time

CHAOS_CONFIG = (
    "svc.cache_lookup=error@p:0.4,svc.cache_insert=error@p:0.4,"
    "svc.embed=error@p:0.2,svc.batch=throw@every:4"
)


def log(msg):
    print(f"chaos_smoke: {msg}", flush=True)


def perm_literal(p):
    if len(p) < 10:
        return "".join(str(x) for x in p)
    return ".".join(str(x) for x in p)


def request_frame(rid, n, faults, verify=False, deadline_ms=0):
    lines = [
        "starring-request v1",
        f"id {rid}",
        f"n {n}",
        f"vertex_faults {len(faults)}",
    ]
    lines += [perm_literal(f) for f in faults]
    lines += ["edge_faults 0", f"verify {1 if verify else 0}"]
    if deadline_ms:
        lines.append(f"deadline_ms {deadline_ms}")
    lines.append("end")
    return "\n".join(lines) + "\n"


def make_instances(count, seed):
    """(n, faults) pairs with |F| <= n-3, so embeds cannot fail honestly."""
    rng = random.Random(seed)
    out = []
    for i in range(count):
        n = 4 + (i % 3)
        nf = rng.randrange(0, n - 2)  # 0..n-3
        faults = set()
        while len(faults) < nf:
            p = list(range(1, n + 1))
            rng.shuffle(p)
            faults.add(tuple(p))
        out.append((n, sorted(faults)))
    return out


class TokenReader:
    """Whitespace tokenizer over a text stream with line-level access,
    mirroring the daemon's token-based framing."""

    def __init__(self, stream):
        self.stream = stream
        self.tokens = []

    def next_token(self):
        while not self.tokens:
            line = self.stream.readline()
            if line == "":
                return None
            self.tokens = line.split()
        return self.tokens.pop(0)

    def rest_of_line(self):
        rest = " ".join(self.tokens)
        self.tokens = []
        return rest

    def raw_line(self):
        assert not self.tokens, "raw read would skip buffered tokens"
        return self.stream.readline().rstrip("\n")


def read_record(tr):
    """One protocol record: PONG / FAIL reply / stats / response."""
    tok = tr.next_token()
    if tok is None:
        return None
    if tok == "PONG":
        return ("pong",)
    if tok == "FAIL":
        return ("fail", tr.rest_of_line())
    if tok == "starring-stats":
        assert tr.next_token() == "v1"
        assert tr.next_token() == "lines"
        count = int(tr.next_token())
        body = [tr.raw_line() for _ in range(count)]
        assert tr.next_token() == "end"
        return ("stats", body)
    assert tok == "starring-response", f"unexpected record start {tok!r}"
    assert tr.next_token() == "v1"
    assert tr.next_token() == "id"
    rid = int(tr.next_token())
    assert tr.next_token() == "status"
    status = tr.next_token()
    if status == "ok":
        assert tr.next_token() == "cache"
        cache_hit = tr.next_token() == "hit"
        assert tr.next_token() == "verified"
        verified = tr.next_token() == "1"
        assert tr.next_token() == "ring"
        count = int(tr.next_token())
        ring = [int(tr.next_token()) for _ in range(count)]
        assert tr.next_token() == "end"
        return ("resp", rid, "ok", cache_hit, verified, ring)
    assert status in ("error", "rejected", "timeout"), status
    assert tr.next_token() == "reason"
    reason = tr.rest_of_line()
    assert tr.next_token() == "end"
    return ("resp", rid, status, None, None, reason)


def parse_prometheus(body):
    counters = {}
    for line in body:
        if line.startswith("#") or not line.strip():
            continue
        parts = line.split()
        if len(parts) == 2:
            try:
                counters[parts[0]] = float(parts[1])
            except ValueError:
                pass
    return counters


def collect_responses(tr, want_ids):
    got = {}
    while want_ids - got.keys():
        rec = read_record(tr)
        assert rec is not None, (
            f"stream ended with {sorted(want_ids - got.keys())[:5]}... "
            "unanswered")
        assert rec[0] == "resp", rec
        got[rec[1]] = rec
    return got


def stdio_stage(daemon):
    env = dict(os.environ)
    env["STARRING_FAILPOINTS"] = CHAOS_CONFIG
    env["STARRING_FAILPOINT_SEED"] = "1234"
    proc = subprocess.Popen(
        [daemon, "--verify-on-hit", "--batch-max", "4"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        env=env, text=True)
    tr = TokenReader(proc.stdout)
    instances = make_instances(60, seed=42)

    # Storm: all requests up front; every fifth carries a budget.
    for i, (n, faults) in enumerate(instances):
        deadline = 500 if i % 5 == 0 else 0
        proc.stdin.write(request_frame(i, n, faults, deadline_ms=deadline))
    proc.stdin.flush()
    got = collect_responses(tr, set(range(len(instances))))
    by_status = {}
    for rec in got.values():
        by_status[rec[2]] = by_status.get(rec[2], 0) + 1
    assert by_status.get("rejected", 0) == 0, by_status
    assert by_status.get("error", 0) > 0, (
        f"the storm injected nothing: {by_status}")
    log(f"stdio storm: 60/60 terminal, statuses {by_status}")

    # Live FAIL handling: garbage is bounced, then the storm is cleared.
    proc.stdin.write("FAIL svc.embed=explode\n")
    proc.stdin.flush()
    rec = read_record(tr)
    assert rec[0] == "fail" and rec[1].startswith("bad "), rec
    proc.stdin.write("FAIL clear\n")
    proc.stdin.write("PING\n")
    proc.stdin.flush()
    rec = read_record(tr)
    assert rec == ("fail", "ok"), rec
    assert read_record(tr) == ("pong",)
    log("stdio: FAIL bounce/clear + PING ok mid-session")

    # Post-chaos verify sweep through the surviving cache: every
    # instance again, verification forced, no failpoints armed.
    base = 1000
    for i, (n, faults) in enumerate(instances):
        proc.stdin.write(request_frame(base + i, n, faults, verify=True))
    proc.stdin.flush()
    sweep = collect_responses(
        tr, set(range(base, base + len(instances))))
    for rid, rec in sorted(sweep.items()):
        assert rec[2] == "ok", f"sweep id={rid}: {rec}"
        assert rec[4], f"sweep id={rid} not verified"
        assert len(rec[5]) > 0, f"sweep id={rid} empty ring"
    log(f"verify sweep: {len(sweep)}/{len(instances)} ok+verified")

    # Counter reconciliation on an idle service.
    proc.stdin.write("STATS\n")
    proc.stdin.flush()
    rec = read_record(tr)
    assert rec[0] == "stats", rec
    counters = parse_prometheus(rec[1])
    fired = counters.get("starring_svc_failpoints_fired", 0)
    per_site = {k: v for k, v in counters.items()
                if k.startswith("starring_fail_")}
    assert fired > 0, counters
    assert len(per_site) >= 3, (
        f"want >=3 distinct failpoint sites, got {sorted(per_site)}")
    assert sum(per_site.values()) == fired, (fired, per_site)
    assert counters.get("starring_svc_verify_failures", 0) == 0, counters
    log(f"counters: {int(fired)} fires across {len(per_site)} sites, "
        "aggregate == per-site sum, 0 verify failures")

    proc.stdin.close()
    rc = proc.wait(timeout=60)
    assert rc == 0, f"stdio daemon exit code {rc}"
    log("stdio: clean EOF drain, exit 0")


def connect(port, timeout=20):
    s = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    s.settimeout(timeout)
    return s


def sock_reader(s):
    return TokenReader(s.makefile("r", encoding="ascii"))


def scrape_stats(port, retries=40):
    # A scrape can race a just-released connection slot and get bounced;
    # retry until a slot frees.
    for _ in range(retries):
        with connect(port) as s:
            s.sendall(b"STATS\n")
            rec = read_record(sock_reader(s))
            if rec[0] == "resp" and rec[2] == "rejected":
                time.sleep(0.25)
                continue
            assert rec[0] == "stats", rec
            return parse_prometheus(rec[1])
    raise AssertionError("stats scrape kept getting rejected")


def tcp_stage(daemon, port):
    proc = subprocess.Popen(
        [daemon, "--listen", str(port), "--max-conns", "2",
         "--write-timeout-ms", "400", "--drain-timeout-ms", "4000"])
    try:
        deadline = time.time() + 20
        while True:
            try:
                with connect(port, timeout=2) as s:
                    s.sendall(b"PING\n")
                    assert read_record(sock_reader(s)) == ("pong",)
                break
            except OSError:
                assert time.time() < deadline, "daemon never came up"
                assert proc.poll() is None, "daemon died during startup"
                time.sleep(0.1)
        log(f"tcp: daemon up on :{port}, PING ok")

        # Connection cap: two holders fill it, the third is bounced
        # with an explicit `status rejected` record.
        hold1, hold2 = connect(port), connect(port)
        with connect(port) as third:
            rec = read_record(sock_reader(third))
            assert rec[0] == "resp" and rec[2] == "rejected", rec
            assert "connection limit" in rec[5], rec
        hold1.close()
        hold2.close()
        time.sleep(0.5)  # let the holders' threads deregister
        assert scrape_stats(port).get("starring_svc_rejected_conns", 0) >= 1
        log("tcp: connection cap bounced the overflow with status rejected")

        # Slow client: bursts large-ring requests and never reads.  A
        # tiny receive buffer (set before connect) caps the TCP window,
        # so the daemon's responses back up, POLLOUT times out, and the
        # connection is evicted.
        slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        slow.settimeout(20)
        slow.connect(("127.0.0.1", port))
        burst = b""
        for i in range(400):
            burst += request_frame(i, 7, []).encode("ascii")
        slow.sendall(burst)
        deadline = time.time() + 30
        evicted = 0
        while time.time() < deadline:
            evicted = scrape_stats(port).get("starring_svc_evicted_conns", 0)
            if evicted >= 1:
                break
            time.sleep(0.25)
        assert evicted >= 1, "slow client never evicted"
        log(f"tcp: slow client evicted (svc.evicted_conns={int(evicted)})")
        slow.close()

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=30)
        assert rc == 0, f"tcp daemon exit code {rc}"
        log("tcp: SIGTERM drain within budget, exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def wait_ping(proc, port, what):
    deadline = time.time() + 20
    while True:
        try:
            with connect(port, timeout=2) as s:
                s.sendall(b"PING\n")
                assert read_record(sock_reader(s)) == ("pong",)
            return
        except OSError:
            assert time.time() < deadline, f"{what} never came up"
            assert proc.poll() is None, f"{what} died during startup"
            time.sleep(0.1)


def read_members(port):
    """The MEMBERS command: {addr: (shard_id, incarnation, state)}."""
    with connect(port) as s:
        s.sendall(b"MEMBERS\n")
        tr = sock_reader(s)
        assert tr.next_token() == "starring-membership"
        assert tr.next_token() == "v1"
        assert tr.next_token() == "epoch"
        epoch = int(tr.next_token())
        assert tr.next_token() == "replication"
        tr.next_token()
        assert tr.next_token() == "vnodes"
        tr.next_token()
        assert tr.next_token() == "members"
        count = int(tr.next_token())
        members = {}
        for _ in range(count):
            assert tr.next_token() == "member"
            addr = tr.next_token()
            members[addr] = (int(tr.next_token()), int(tr.next_token()),
                             tr.next_token())
        assert tr.next_token() == "end"
        return epoch, members


def fail_cmd(port, config):
    with connect(port) as s:
        s.sendall(f"FAIL {config}\n".encode("ascii"))
        rec = read_record(sock_reader(s))
        assert rec == ("fail", "ok"), rec


def embed_ok(port, rid):
    with connect(port) as s:
        s.sendall(request_frame(rid, 5, []).encode("ascii"))
        rec = read_record(sock_reader(s))
        assert rec[0] == "resp" and rec[2] == "ok", rec


def wait_state(port, addr, want, budget, what):
    deadline = time.time() + budget
    state = "?"
    while time.time() < deadline:
        state = read_members(port)[1].get(addr, (0, 0, "absent"))[2]
        if state == want:
            return
        time.sleep(0.1)
    raise AssertionError(f"{what}: {addr} stuck at {state!r}, want {want!r}")


def gossip_stage(daemon, port_a, port_b):
    """Asymmetric gossip partition, healed by refutation.

    Two shards form a cluster over SWIM.  B's gossip plane is then
    severed with failpoints — `gossip.probe` silences its prober,
    `gossip.ack` makes it swallow its replies (while still merging the
    incoming updates, like a one-way link) — so A's probes go
    unanswered and A marks B suspect.  The suspicion window is set far
    past the drill so B is never buried: when the failpoints clear, A's
    next ping piggybacks the suspicion to B, B outbids it with a higher
    incarnation, and A flips B back to alive.  Throughout, the data
    plane on BOTH sides keeps answering embeds — a gossip partition is
    not a service outage — and A must record zero deaths.
    """
    addr_a = f"127.0.0.1:{port_a}"
    addr_b = f"127.0.0.1:{port_b}"
    gossip = ["--gossip-interval-ms", "100",
              "--suspicion-timeout-ms", "15000"]
    proc_a = subprocess.Popen(
        [daemon, "--listen", str(port_a), "--shard-id", "0",
         "--bootstrap"] + gossip)
    proc_b = None
    try:
        wait_ping(proc_a, port_a, "gossip daemon A")
        proc_b = subprocess.Popen(
            [daemon, "--listen", str(port_b), "--shard-id", "1",
             "--join", addr_a] + gossip)
        wait_ping(proc_b, port_b, "gossip daemon B")
        wait_state(port_a, addr_b, "alive", 10, "join")
        inc_before = read_members(port_a)[1][addr_b][1]
        log(f"gossip: B joined A's view (incarnation {inc_before})")

        # Sever B's gossip plane only.
        fail_cmd(port_b, "gossip.probe=error,gossip.ack=error")
        wait_state(port_a, addr_b, "suspect", 10, "partition")
        log("gossip: dropped acks drove A to suspect B")

        # A suspect is not an outage: both data planes still answer.
        embed_ok(port_a, 9001)
        embed_ok(port_b, 9002)
        log("gossip: embeds served on both sides mid-partition")

        # Heal: A's next ping delivers the suspicion, B refutes it.
        fail_cmd(port_b, "clear")
        wait_state(port_a, addr_b, "alive", 10, "refutation")
        inc_after = read_members(port_a)[1][addr_b][1]
        assert inc_after > inc_before, (
            f"B revived without an incarnation bump "
            f"({inc_before} -> {inc_after}): not a refutation")
        log(f"gossip: B refuted at incarnation {inc_after}")

        stats_a = scrape_stats(port_a)
        assert stats_a.get("starring_cluster_membership_suspects", 0) >= 1, \
            stats_a
        assert stats_a.get("starring_cluster_membership_deaths", 0) == 0, (
            "a healed partition must not bury anyone")
        stats_b = scrape_stats(port_b)
        assert stats_b.get("starring_cluster_membership_refutes", 0) >= 1, \
            stats_b
        log("gossip: >=1 suspicion, >=1 refutation, 0 deaths")

        for proc in (proc_b, proc_a):
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            assert rc == 0, f"gossip daemon exit code {rc}"
        log("gossip: both daemons drained clean")
    finally:
        for proc in (proc_a, proc_b):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("daemon", help="path to the starringd binary")
    ap.add_argument("--port", type=int, default=47161)
    args = ap.parse_args()
    stdio_stage(args.daemon)
    tcp_stage(args.daemon, args.port)
    gossip_stage(args.daemon, args.port + 2, args.port + 3)
    log("all stages passed")


if __name__ == "__main__":
    main()
