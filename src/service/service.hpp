// Long-running embedding service: admission queue, batch scheduler,
// symmetry-canonical result cache.
//
// Request flow:
//   submit()            bounded admission queue (blocking backpressure
//      |                or immediate rejection, caller's choice)
//   scheduler thread    pops a batch of same-dimension requests
//      |
//   canonicalize        map (n, F) to its relabeling-class
//      |                representative (service/canonical.hpp)
//   cache lookup        sharded LRU keyed by canonical form; a batch
//      |                computes each distinct canonical instance once
//   embed (miss)        Theorem-1 pipeline on the persistent thread
//      |                pool, in the canonical frame
//   relabel + verify    map the canonical ring back to the caller's
//      |                frame; optionally re-run the independent
//   respond             verifier (always on request, and on every
//                       cache hit with verify_on_hit)
//
// Computing only in the canonical frame makes responses deterministic:
// a cache hit is bit-identical to what a fresh computation of the same
// request would return.  Graceful drain: drain() stops admission,
// everything already queued is processed and delivered, then
// next_response() returns nullopt.
//
// Observability (svc.* counters, emitted like every other area's):
//   svc.requests / svc.rejected      admitted vs bounced at the queue
//   svc.cache_hits / svc.cache_misses  canonical-cache outcomes
//   svc.cache_evictions              LRU pressure
//   svc.batches / svc.batch_size_max / svc.queue_depth_max
//   svc.embed_failures / svc.verify_failures / svc.verified
//   svc.timeouts                     requests answered `status timeout`
//   svc.latency.*                    submit-to-response histogram
//
// Deadlines: a request may carry a completion budget (deadline_ms,
// measured from admission).  Expired requests still queued are shed at
// batch formation; an in-flight embedding whose every interested
// request is past budget is cooperatively cancelled (a watchdog thread
// flips the EmbedOptions::cancel flag the pipeline polls).  Either way
// the response is `status timeout` — strictly: a ring computed after
// the budget elapsed is cached for future callers but not returned.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/ring_embedder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/canonical.hpp"
#include "util/io.hpp"

namespace starring {

struct ServiceOptions {
  /// Admission-queue bound; submit() blocks (wait=true) or returns
  /// false (wait=false) while this many requests are queued.
  std::size_t queue_depth = 256;
  /// Most requests one scheduler batch may contain.
  std::size_t batch_max = 16;
  /// Canonical embeddings kept by the LRU cache.
  std::size_t cache_capacity = 4096;
  /// Re-run the independent verifier on every cache hit after
  /// relabeling (defense against cache corruption; requests can also
  /// ask for verification individually).
  bool verify_on_hit = false;
  /// Knobs for the underlying Theorem-1 pipeline.
  EmbedOptions embed;
};

class EmbedService {
 public:
  using Callback = std::function<void(ServiceResponse)>;

  explicit EmbedService(ServiceOptions opts = {});
  ~EmbedService();  // drains and joins the scheduler
  EmbedService(const EmbedService&) = delete;
  EmbedService& operator=(const EmbedService&) = delete;

  /// Admit a request.  With wait=true a full queue blocks the caller
  /// until space frees (backpressure); with wait=false it returns false
  /// instead.  Returns false once drain() has begun.  A null on_done
  /// routes the response to next_response(); otherwise on_done runs on
  /// the scheduler thread.
  bool submit(ServiceRequest req, Callback on_done = nullptr,
              bool wait = true);

  /// Block for the next completed callback-less response; nullopt once
  /// the service has drained and every response was consumed.
  std::optional<ServiceResponse> next_response();

  /// Stop admitting; queued requests still complete.  Idempotent and
  /// non-blocking — destruction (or a next_response() nullopt) marks
  /// the drain finished.
  void drain();

  /// Synchronous single request on the caller's thread, sharing the
  /// cache and counters but bypassing queue and batcher.  For tests,
  /// benches, and embedded callers.
  ServiceResponse process_now(const ServiceRequest& req);

  const ServiceOptions& options() const { return opts_; }

 private:
  struct Pending {
    ServiceRequest req;
    Callback done;
    std::chrono::steady_clock::time_point admitted;
    /// Absolute completion budget (admitted + deadline_ms); only
    /// meaningful when has_deadline.
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    // Root span context of this request's trace (invalid while tracing
    // is off).  Allocated at admission; every stage the request passes
    // through parents its spans here, and the svc.request root itself
    // is emitted with explicit [admitted, delivered] endpoints.
    obs::trace::Context span;

    bool expired(std::chrono::steady_clock::time_point now) const {
      return has_deadline && now >= deadline;
    }
  };

  void scheduler_loop();
  /// Pop up to batch_max requests of one dimension (the front's),
  /// preserving the relative order of what stays queued.
  std::vector<Pending> take_batch();
  void run_batch(std::vector<Pending> batch);
  /// Canonical-frame embedding for a cache miss; inserts on success.
  /// A non-null cancel is polled by the pipeline (deadline watchdog).
  CanonicalRingCache::RingPtr compute_canonical(
      int n, const CanonicalForm& canon,
      const std::atomic<bool>* cancel = nullptr);
  /// Latency accounting, root-span emission, and response routing
  /// (callback or next_response queue) for one finished request.
  void deliver(Pending& p, ServiceResponse resp,
               std::chrono::steady_clock::time_point now);

  // --- Deadline watchdog --------------------------------------------
  // One thread arms per-computation cancel flags: run_batch registers
  // (deadline, flag) pairs before embedding and unregisters after; the
  // watchdog flips flags whose deadline passed.
  std::uint64_t watch_deadline(std::chrono::steady_clock::time_point deadline,
                               std::atomic<bool>* cancel);
  void unwatch(std::uint64_t id);
  void watchdog_loop();
  /// Relabel a canonical ring into the request's frame and verify as
  /// asked; fills everything but the latency accounting.
  ServiceResponse finish(const ServiceRequest& req,
                         const CanonicalForm& canon,
                         const CanonicalRingCache::RingPtr& ring,
                         bool cache_hit);

  ServiceOptions opts_;
  CanonicalRingCache cache_;
  obs::LatencyHistogram latency_{"svc.latency"};

  std::mutex mu_;
  std::condition_variable admit_cv_;  // submitters waiting for space
  std::condition_variable work_cv_;   // scheduler waiting for work
  std::condition_variable resp_cv_;   // consumers waiting for responses
  std::deque<Pending> queue_;
  std::deque<ServiceResponse> responses_;
  bool draining_ = false;
  bool stopped_ = false;  // scheduler exited; no more responses coming
  std::thread scheduler_;

  struct Watch {
    std::chrono::steady_clock::time_point deadline;
    std::atomic<bool>* cancel;
  };
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::vector<std::pair<std::uint64_t, Watch>> watches_;
  std::uint64_t next_watch_id_ = 1;
  bool watch_stop_ = false;
  std::thread watchdog_;
};

}  // namespace starring
