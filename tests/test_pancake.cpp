// Tests for the pancake-graph substrate: prefix-reversal adjacency,
// non-bipartiteness, and the n! - |Fv| fault-tolerant ring (contrast
// with the star graph's bipartite n! - 2|Fv|).
#include <gtest/gtest.h>

#include <tuple>

#include "fault/generators.hpp"
#include "pancake/pancake.hpp"
#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

TEST(Pancake, FlipBasics) {
  const Perm p = Perm::of({0, 1, 2, 3, 4});
  EXPECT_EQ(pancake_flip(p, 2), Perm::of({1, 0, 2, 3, 4}));
  EXPECT_EQ(pancake_flip(p, 5), Perm::of({4, 3, 2, 1, 0}));
  EXPECT_EQ(pancake_flip(pancake_flip(p, 3), 3), p);  // involution
}

TEST(Pancake, AdjacencyMatchesFlips) {
  for (VertexId a = 0; a < factorial(5); a += 7) {
    const Perm u = Perm::unrank(a, 5);
    std::vector<Perm> nbrs;
    for (int k = 2; k <= 5; ++k) nbrs.push_back(pancake_flip(u, k));
    for (VertexId b = 0; b < factorial(5); b += 11) {
      const Perm v = Perm::unrank(b, 5);
      const bool expect =
          std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
      EXPECT_EQ(pancake_adjacent(u, v), expect)
          << u.to_string() << " vs " << v.to_string();
    }
  }
}

TEST(Pancake, DegreeIsNMinusOne) {
  const Perm p = Perm::identity(6);
  std::set<std::uint64_t> nbrs;
  for (int k = 2; k <= 6; ++k) nbrs.insert(pancake_flip(p, k).bits());
  EXPECT_EQ(nbrs.size(), 5u);
}

TEST(Pancake, NotBipartiteHasOddRing) {
  // A 7-cycle exists in P_4 — the structural difference from the star
  // graph that halves the per-fault ring cost.
  FaultSet none;
  // Build explicitly: flips 2,3,2,3,2,4,4?  Instead: brute force via
  // the ring embedder on a 17-vertex... simply check an explicit odd
  // closed walk that is a simple cycle.
  // Known 7-cycle in P_4 (prefix lengths): 2,3,4,2,3,4,3 applied to id.
  const int seq[] = {2, 3, 4, 2, 3, 4, 3};
  Perm cur = Perm::identity(4);
  std::vector<Perm> walk{cur};
  for (const int k : seq) {
    cur = pancake_flip(cur, k);
    walk.push_back(cur);
  }
  // If this particular sequence is not a cycle, fall back to searching
  // one; either way P_4 must contain a 7-cycle.
  bool found = walk.back() == walk.front();
  if (found) {
    std::set<std::uint64_t> distinct;
    for (std::size_t i = 0; i + 1 < walk.size(); ++i)
      distinct.insert(walk[i].bits());
    found = distinct.size() == 7;
  }
  if (!found) {
    // Exhaustive: some 7-cycle through the identity.
    // (cycle_with_exact_vertices over the P_4 graph.)
    SmallGraph g(24);
    for (int u = 0; u < 24; ++u)
      for (int k = 2; k <= 4; ++k) {
        const int v = static_cast<int>(
            pancake_flip(Perm::unrank(static_cast<VertexId>(u), 4), k)
                .rank());
        if (v > u) g.add_edge(u, v);
      }
    found = cycle_with_exact_vertices(g, 0, 7).has_value();
  }
  EXPECT_TRUE(found) << "P_4 should contain a 7-cycle (non-bipartite)";
}

TEST(Pancake, FaultFreeHamiltonian) {
  for (int n = 3; n <= 6; ++n) {
    const FaultSet none;
    const auto ring = pancake_fault_ring(n, none);
    ASSERT_TRUE(ring.has_value()) << "P_" << n;
    EXPECT_EQ(ring->size(), factorial(n));
    EXPECT_TRUE(verify_pancake_ring(n, none, *ring));
  }
}

class PancakeRingParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PancakeRingParamTest, FaultyRingLosesOnlyOnePerFault) {
  const auto [n, nf] = GetParam();
  const StarGraph g(n);  // fault generator source (same vertex space)
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FaultSet f = random_vertex_faults(g, nf, seed);
    const auto ring = pancake_fault_ring(n, f);
    ASSERT_TRUE(ring.has_value()) << "P_" << n << " nf=" << nf
                                  << " seed=" << seed;
    EXPECT_EQ(ring->size(), factorial(n) - static_cast<std::uint64_t>(nf));
    EXPECT_TRUE(verify_pancake_ring(n, f, *ring));
  }
}

INSTANTIATE_TEST_SUITE_P(PancakeSweep, PancakeRingParamTest,
                         ::testing::Values(std::make_tuple(4, 1),
                                           std::make_tuple(5, 1),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(6, 2),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(7, 4)));

TEST(Pancake, OddRingLengthIsPossibleWithOneFault) {
  // n! - 1 is odd: only a non-bipartite graph can host it at all.
  const StarGraph g(5);
  const FaultSet f = random_vertex_faults(g, 1, 3);
  const auto ring = pancake_fault_ring(5, f);
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->size(), 119u);
  EXPECT_EQ(ring->size() % 2, 1u);
}

TEST(Pancake, VerifierCatchesBadRings) {
  const auto ring = pancake_fault_ring(4, FaultSet{});
  ASSERT_TRUE(ring.has_value());
  auto broken = *ring;
  std::swap(broken[1], broken[10]);
  EXPECT_FALSE(verify_pancake_ring(4, FaultSet{}, broken));
  FaultSet f;
  f.add_vertex((*ring)[5]);
  EXPECT_FALSE(verify_pancake_ring(4, f, *ring));
}

}  // namespace
}  // namespace starring
