#include "core/chaining.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <unordered_map>

#include "core/block_oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace starring {

namespace {

struct ExitCandidate {
  int y = -1;        // local index of the exit member in this block
  int partner = -1;  // local index of the entry it forces in the next block
};

/// Relaxed read of the caller's cooperative-cancel flag (see
/// EmbedOptions::cancel); checked at block-advance granularity so a
/// cancelled search stops within one in-block path search.
bool cancelled(const EmbedOptions& opts) {
  return opts.cancel != nullptr &&
         opts.cancel->load(std::memory_order_relaxed);
}

struct BlockInfo {
  std::uint32_t fault_mask = 0;    // local indices of vertex faults
  std::uint32_t excised_mask = 0;  // healthy vertices skipped by design
  int target = BlockOracle::kBlockSize;
  std::vector<std::pair<int, int>> removed_edges;  // in-block edge faults
  std::vector<ExitCandidate> exits;

  std::uint32_t forbidden() const { return fault_mask | excised_mask; }
};

/// Pack the symbols a permutation shows at the blocks' fixed positions;
/// equal signature <=> same block.
std::uint64_t signature(const Perm& p, const std::vector<int>& fixed_pos) {
  std::uint64_t sig = 0;
  for (const int i : fixed_pos)
    sig = (sig << 4) | static_cast<std::uint64_t>(p.get(i));
  return sig;
}

std::uint64_t signature(const SubstarPattern& pat,
                        const std::vector<int>& fixed_pos) {
  std::uint64_t sig = 0;
  for (const int i : fixed_pos)
    sig = (sig << 4) | static_cast<std::uint64_t>(pat.slot(i));
  return sig;
}

/// Locate vertex faults, in-block edge faults, and the optional excised
/// substar inside the blocks; fill per-block targets.  Returns nullopt
/// when some block is damaged beyond threading.
std::optional<std::vector<BlockInfo>> build_block_infos(
    const std::vector<SubstarPattern>& blocks_pat, const FaultSet& faults,
    int per_fault_loss, const SubstarPattern* excise, unsigned threads) {
  obs::ScopedPhase phase("chain_block_infos");
  obs::trace::ScopedSpan span("chain_block_infos");
  const std::size_t m = blocks_pat.size();
  std::vector<int> fixed_pos;
  for (int i = 0; i < blocks_pat.front().n(); ++i)
    if (!blocks_pat.front().is_free(i)) fixed_pos.push_back(i);

  std::vector<std::uint64_t> sigs(m);
  parallel_for(0, m, threads, [&](std::size_t k) {
    sigs[k] = signature(blocks_pat[k], fixed_pos);
  });
  std::unordered_map<std::uint64_t, std::uint32_t> block_of;
  block_of.reserve(m * 2);
  for (std::size_t k = 0; k < m; ++k)
    block_of.emplace(sigs[k], static_cast<std::uint32_t>(k));

  std::vector<BlockInfo> blocks(m);
  for (const Perm& f : faults.vertex_faults()) {
    const auto it = block_of.find(signature(f, fixed_pos));
    if (it == block_of.end()) continue;  // excluded block (Latifi mode)
    const std::size_t k = it->second;
    blocks[k].fault_mask |= 1u << blocks_pat[k].local_index(f);
  }
  for (const EdgeFault& e : faults.edge_faults()) {
    const auto iu = block_of.find(signature(e.u, fixed_pos));
    if (iu == block_of.end()) continue;
    const auto iv = block_of.find(signature(e.v, fixed_pos));
    if (iv == block_of.end() || iu->second != iv->second) continue;
    const std::size_t k = iu->second;
    blocks[k].removed_edges.emplace_back(
        static_cast<int>(blocks_pat[k].local_index(e.u)),
        static_cast<int>(blocks_pat[k].local_index(e.v)));
  }
  if (excise != nullptr) {
    const auto it = block_of.find(signature(excise->member(0), fixed_pos));
    if (it == block_of.end()) return std::nullopt;
    const std::size_t k = it->second;
    for (const Perm& p : excise->members()) {
      if (!blocks_pat[k].contains(p)) return std::nullopt;  // spans blocks
      blocks[k].excised_mask |= 1u << blocks_pat[k].local_index(p);
    }
  }
  for (auto& b : blocks) {
    b.target = BlockOracle::kBlockSize -
               per_fault_loss * std::popcount(b.fault_mask) -
               std::popcount(b.excised_mask);
    if (b.target < 2) return std::nullopt;  // block too damaged to thread
  }
  return blocks;
}

/// Enumerate the healthy crossings from block k to block knext.
bool compute_exits(const std::vector<SubstarPattern>& blocks_pat,
                   const std::vector<MemberExpander>& expand,
                   std::vector<BlockInfo>& blocks, const FaultSet& faults,
                   std::size_t k, std::size_t knext) {
  const auto& a = blocks_pat[k];
  const auto& next = blocks_pat[knext];
  int p = -1;
  const bool adj = SubstarPattern::adjacent(a, next, &p);
  assert(adj);
  if (!adj) return false;
  const int b_sym = next.slot(p);
  const int a_sym = a.slot(p);
  // Only members with b_sym at position 0 can cross, and those occupy
  // one contiguous local-index range (the leading Lehmer digit picks
  // the position-0 symbol): (r-1)! candidates instead of scanning all
  // r! members.  The crossing u -> v = u.star_move(p) swaps position 0
  // (holding b_sym) with the differing fixed position p (holding a_sym);
  // the trailing free symbols are untouched and form the same set in
  // both blocks, so the sub-Lehmer index t carries over verbatim:
  //   y = b_idx*(r-1)! + t in block k  <=>  partner = a_idx*(r-1)! + t.
  const int b_idx = expand[k].free_symbol_index(b_sym);
  const int a_idx = expand[knext].free_symbol_index(a_sym);
  assert(b_idx >= 0);  // next fixes b_sym at p, so it is free in a
  assert(a_idx >= 0);
  constexpr int kCrossings = BlockOracle::kBlockSize / 4;  // (4-1)!
  // Vertex faults are already folded into each block's forbidden mask, so
  // only cross-block edge faults need the actual permutations.
  const bool check_edges = faults.num_edge_faults() != 0;
  const std::uint32_t fa = blocks[k].forbidden();
  const std::uint32_t fb = blocks[knext].forbidden();
  for (int t = 0; t < kCrossings; ++t) {
    const int y = b_idx * kCrossings + t;
    if ((fa >> y) & 1u) continue;
    const int partner = a_idx * kCrossings + t;
    if ((fb >> partner) & 1u) continue;
    if (check_edges) {
      const Perm u = expand[k].member(static_cast<std::uint64_t>(y));
      assert(u.get(0) == b_sym);
      if (faults.edge_faulty(u, u.star_move(p))) continue;
    }
    blocks[k].exits.push_back({y, partner});
  }
  return !blocks[k].exits.empty();
}

/// The parity an exit must have given the entry parity and the block's
/// vertex target (a path of T vertices uses T-1 parity-flipping edges).
int required_exit_parity(const BlockOracle& oracle, int entry, int target) {
  return oracle.local_parity(entry) ^ ((target - 1) & 1);
}

/// Emit the concatenated vertex ids for the chosen per-block paths.
/// Offsets are exact, so blocks fill disjoint slices in parallel.
std::vector<VertexId> emit(const std::vector<MemberExpander>& expand,
                           const std::vector<std::vector<int>>& paths,
                           unsigned threads) {
  obs::ScopedPhase phase("chain_emit");
  obs::trace::ScopedSpan span("chain_emit");
  std::vector<std::size_t> offset(paths.size() + 1, 0);
  for (std::size_t j = 0; j < paths.size(); ++j)
    offset[j + 1] = offset[j] + paths[j].size();
  std::vector<VertexId> out(offset.back());
  parallel_for(0, expand.size(), threads, [&](std::size_t j) {
    std::size_t at = offset[j];
    for (const int local : paths[j])
      out[at++] = expand[j].member_rank(static_cast<std::uint64_t>(local));
  });
  return out;
}

/// Enumerate exits for every consecutive block pair in parallel;
/// returns false when some block has no healthy crossing.
bool compute_all_exits(const std::vector<SubstarPattern>& blocks_pat,
                       const std::vector<MemberExpander>& expand,
                       std::vector<BlockInfo>& blocks, const FaultSet& faults,
                       bool cyclic, unsigned threads) {
  obs::ScopedPhase phase("chain_exits");
  obs::trace::ScopedSpan span("chain_exits");
  obs::counter("chain.threads").record_max(threads);
  const std::size_t m = blocks_pat.size();
  const std::size_t pairs = cyclic ? m : m - 1;
  std::vector<std::uint8_t> ok(pairs, 0);
  parallel_for(0, pairs, threads, [&](std::size_t k) {
    ok[k] = compute_exits(blocks_pat, expand, blocks, faults, k, (k + 1) % m)
                ? 1
                : 0;
  });
  for (const auto flag : ok)
    if (!flag) return false;
  return true;
}

std::vector<MemberExpander> make_expanders(
    const std::vector<SubstarPattern>& blocks_pat, unsigned threads) {
  obs::ScopedPhase phase("chain_expanders");
  obs::trace::ScopedSpan span("chain_expanders");
  // Expander construction precomputes the member_rank tables, so build
  // the n!/24 of them in parallel into pre-sized slots.
  std::vector<MemberExpander> expand(blocks_pat.size(),
                                     MemberExpander(blocks_pat.front()));
  parallel_for(1, blocks_pat.size(), threads, [&](std::size_t k) {
    expand[k] = MemberExpander(blocks_pat[k]);
  });
  return expand;
}

}  // namespace

std::optional<EmbedResult> chain_block_ring(const StarGraph& g,
                                            const SuperRing& sr,
                                            const FaultSet& faults,
                                            const EmbedOptions& opts,
                                            int per_fault_loss,
                                            const SubstarPattern* excise) {
  (void)g;
  assert(per_fault_loss % 2 == 0 && per_fault_loss >= 2);
  const auto& ring = sr.ring;
  const std::size_t m = ring.size();
  if (m < 3 || ring.front().r() != 4) return std::nullopt;

  // The oracle is stateless apart from tallies: every instance shares
  // the process-wide path cache, so constructing one per call is cheap
  // and thread-clean.
  BlockOracle oracle;
  if (opts.prewarm_oracle) BlockOracle::prewarm_fault_free();

  auto blocks_opt = build_block_infos(ring, faults, per_fault_loss, excise,
                                      opts.effective_threads());
  if (!blocks_opt) return std::nullopt;
  std::vector<BlockInfo>& blocks = *blocks_opt;
  const std::vector<MemberExpander> expand =
      make_expanders(ring, opts.effective_threads());
  if (!compute_all_exits(ring, expand, blocks, faults, /*cyclic=*/true,
                         opts.effective_threads()))
    return std::nullopt;

  EmbedStats stats;
  stats.num_blocks = m;
  for (const auto& b : blocks)
    if (b.fault_mask != 0) ++stats.faulty_blocks;

  std::vector<std::uint32_t> failed(m);
  std::vector<std::size_t> exit_idx(m);
  std::vector<std::vector<int>> paths(m);
  std::vector<int> entry(m);

  // Spans the backtracking search; the nested chain_emit span on
  // success is contained in (not additional to) this one.
  obs::ScopedPhase phase("chain_search");
  obs::trace::ScopedSpan span("chain_search");
  for (const ExitCandidate& closure : blocks[m - 1].exits) {
    if (cancelled(opts)) return std::nullopt;
    ++stats.closure_attempts;
    std::fill(failed.begin(), failed.end(), 0u);
    std::size_t k = 0;
    entry[0] = closure.partner;
    exit_idx[0] = 0;
    std::int64_t backtracks = 0;
    bool aborted = false;
    while (k < m && !aborted) {
      if (cancelled(opts)) return std::nullopt;
      BlockInfo& blk = blocks[k];
      bool advanced = false;
      while (!advanced) {
        const ExitCandidate* cand = nullptr;
        if (k == m - 1) {
          if (exit_idx[k] == 0) {
            cand = &closure;
            exit_idx[k] = 1;
          } else {
            break;
          }
        } else {
          if (exit_idx[k] >= blk.exits.size()) break;
          cand = &blk.exits[exit_idx[k]++];
        }
        if (cand->y == entry[k]) continue;
        if (oracle.local_parity(cand->y) !=
            required_exit_parity(oracle, entry[k], blk.target))
          continue;
        if (k + 1 < m && ((failed[k + 1] >> cand->partner) & 1u)) continue;
        auto path = oracle.find_path(entry[k], cand->y, blk.forbidden(),
                                     blk.target, blk.removed_edges);
        if (!path) continue;
        paths[k] = std::move(*path);
        if (k + 1 < m) {
          entry[k + 1] = cand->partner;
          exit_idx[k + 1] = 0;
        }
        ++k;
        advanced = true;
      }
      if (!advanced) {
        failed[k] |= 1u << entry[k];
        if (k == 0) break;  // this closure cannot work
        --k;
        ++backtracks;
        ++stats.backtracks;
        if (backtracks > opts.backtrack_budget) aborted = true;
      }
    }
    if (k == m) {
      EmbedResult res;
      res.ring = emit(expand, paths, opts.effective_threads());
      res.stats = stats;
      return res;
    }
  }
  return std::nullopt;
}

std::optional<EmbedResult> chain_block_path(const StarGraph& g,
                                            const SuperRing& sp,
                                            const FaultSet& faults,
                                            const EmbedOptions& opts,
                                            const Perm& s, const Perm& t,
                                            int short_block,
                                            int per_fault_loss) {
  (void)g;
  assert(per_fault_loss % 2 == 0 && per_fault_loss >= 2);
  const auto& chain = sp.ring;
  const std::size_t m = chain.size();
  if (m < 2 || chain.front().r() != 4) return std::nullopt;
  if (!chain.front().contains(s) || !chain.back().contains(t))
    return std::nullopt;
  if (faults.vertex_faulty(s) || faults.vertex_faulty(t)) return std::nullopt;

  BlockOracle oracle;
  if (opts.prewarm_oracle) BlockOracle::prewarm_fault_free();

  auto blocks_opt = build_block_infos(chain, faults, per_fault_loss, nullptr,
                                      opts.effective_threads());
  if (!blocks_opt) return std::nullopt;
  std::vector<BlockInfo>& blocks = *blocks_opt;
  const std::vector<MemberExpander> expand =
      make_expanders(chain, opts.effective_threads());
  if (m >= 2 && !compute_all_exits(chain, expand, blocks, faults,
                                   /*cyclic=*/false,
                                   opts.effective_threads()))
    return std::nullopt;

  if (short_block >= 0 && short_block < static_cast<int>(m)) {
    BlockInfo& blk = blocks[static_cast<std::size_t>(short_block)];
    blk.target -= 1;
    if (blk.target < 1) return std::nullopt;
  }

  const int s_local = static_cast<int>(chain.front().local_index(s));
  const int t_local = static_cast<int>(chain.back().local_index(t));
  const ExitCandidate final_exit{t_local, -1};

  EmbedStats stats;
  stats.num_blocks = m;
  for (const auto& b : blocks)
    if (b.fault_mask != 0) ++stats.faulty_blocks;

  std::vector<std::uint32_t> failed(m, 0u);
  std::vector<std::size_t> exit_idx(m);
  std::vector<std::vector<int>> paths(m);
  std::vector<int> entry(m);

  obs::ScopedPhase phase("chain_search");
  obs::trace::ScopedSpan span("chain_search");
  std::size_t k = 0;
  entry[0] = s_local;
  exit_idx[0] = 0;
  std::int64_t backtracks = 0;
  while (k < m) {
    if (cancelled(opts)) return std::nullopt;
    BlockInfo& blk = blocks[k];
    bool advanced = false;
    while (!advanced) {
      const ExitCandidate* cand = nullptr;
      if (k == m - 1) {
        if (exit_idx[k] == 0) {
          cand = &final_exit;
          exit_idx[k] = 1;
        } else {
          break;
        }
      } else {
        if (exit_idx[k] >= blk.exits.size()) break;
        cand = &blk.exits[exit_idx[k]++];
      }
      if (cand->y == entry[k] && blk.target != 1) continue;
      if (blk.target == 1 && cand->y != entry[k]) continue;
      if (blk.target > 1 &&
          oracle.local_parity(cand->y) !=
              required_exit_parity(oracle, entry[k], blk.target))
        continue;
      if (k + 1 < m && ((failed[k + 1] >> cand->partner) & 1u)) continue;
      auto path = oracle.find_path(entry[k], cand->y, blk.forbidden(),
                                   blk.target, blk.removed_edges);
      if (!path) continue;
      paths[k] = std::move(*path);
      if (k + 1 < m) {
        entry[k + 1] = cand->partner;
        exit_idx[k + 1] = 0;
      }
      ++k;
      advanced = true;
    }
    if (!advanced) {
      failed[k] |= 1u << entry[k];
      if (k == 0) return std::nullopt;
      --k;
      ++backtracks;
      ++stats.backtracks;
      if (backtracks > opts.backtrack_budget) return std::nullopt;
    }
  }
  EmbedResult res;
  res.ring = emit(expand, paths, opts.effective_threads());
  res.stats = stats;
  return res;
}

}  // namespace starring
