// STARRING_THREADS is parsed once per process (first call to
// EmbedOptions::effective_threads()), so these tests live in their own
// binary where nothing else touches the embedder: the env var set below
// is guaranteed to be what the latch sees, both under ctest's
// per-test processes and when the binary is run directly.
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/ring_embedder.hpp"
#include "util/thread_pool.hpp"

namespace starring {
namespace {

TEST(EnvThreads, OverridesProgrammaticValue) {
  ASSERT_EQ(setenv("STARRING_THREADS", "3", /*overwrite=*/1), 0);

  EmbedOptions opts;
  opts.num_threads = 1;
  EXPECT_EQ(opts.effective_threads(), 3u);

  // The override applies regardless of the programmatic value, and the
  // parse is latched: changing the variable later has no effect.
  opts.num_threads = 0;
  EXPECT_EQ(opts.effective_threads(), 3u);
  ASSERT_EQ(setenv("STARRING_THREADS", "9", 1), 0);
  EXPECT_EQ(opts.effective_threads(), 3u);
}

}  // namespace
}  // namespace starring
