// Tests for the prior-art baselines: Tseng et al. (vertex and edge
// faults) and Latifi–Bagherzadeh (clustered faults), plus the relative
// ordering the paper's comparison rests on.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/latifi.hpp"
#include "baselines/tseng.hpp"
#include "core/verify.hpp"
#include "fault/generators.hpp"

namespace starring {
namespace {

TEST(Tseng, VertexFaultBoundMet) {
  for (int n = 5; n <= 7; ++n) {
    const StarGraph g(n);
    for (int nf = 1; nf <= n - 3; ++nf) {
      const FaultSet f = random_vertex_faults(g, nf, 1000 + nf);
      const auto res = tseng_vertex_fault_ring(g, f);
      ASSERT_TRUE(res.has_value()) << "n=" << n << " nf=" << nf;
      const auto rep = verify_healthy_ring(g, f, res->ring);
      EXPECT_TRUE(rep.valid) << rep.error;
      EXPECT_EQ(rep.length, factorial(n) - 4 * static_cast<std::uint64_t>(nf));
    }
  }
}

TEST(Tseng, OursStrictlyLonger) {
  // The paper's claim in one line: n!-2f > n!-4f for every f >= 1.
  const StarGraph g(6);
  const FaultSet f = random_vertex_faults(g, 3, 7);
  const auto ours = embed_longest_ring(g, f);
  const auto theirs = tseng_vertex_fault_ring(g, f);
  ASSERT_TRUE(ours && theirs);
  EXPECT_EQ(ours->ring.size(), 720u - 6);
  EXPECT_EQ(theirs->ring.size(), 720u - 12);
  EXPECT_GT(ours->ring.size(), theirs->ring.size());
}

class TsengEdgeParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TsengEdgeParamTest, FullLengthRingDespiteEdgeFaults) {
  const auto [n, ne] = GetParam();
  const StarGraph g(n);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FaultSet f = random_edge_faults(g, ne, seed);
    const auto res = tseng_edge_fault_ring(g, f);
    ASSERT_TRUE(res.has_value()) << "n=" << n << " ne=" << ne
                                 << " seed=" << seed;
    const auto rep = verify_healthy_ring(g, f, res->ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, factorial(n));  // no vertex lost
  }
}

INSTANTIATE_TEST_SUITE_P(EdgeFaultSweep, TsengEdgeParamTest,
                         ::testing::Values(std::make_tuple(4, 1),
                                           std::make_tuple(5, 1),
                                           std::make_tuple(5, 2),
                                           std::make_tuple(6, 3),
                                           std::make_tuple(7, 4)));

TEST(Tseng, ClusteredEdgeFaultsWorstCase) {
  // All n-3 faulty links at one vertex: it keeps 2 healthy links, just
  // enough to sit on a ring.
  for (int n = 5; n <= 7; ++n) {
    const StarGraph g(n);
    const FaultSet f = clustered_edge_faults(g, n - 3, 31);
    const auto res = tseng_edge_fault_ring(g, f);
    ASSERT_TRUE(res.has_value()) << n;
    const auto rep = verify_healthy_ring(g, f, res->ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length, factorial(n));
  }
}

TEST(Latifi, MinimalEnclosingDim) {
  const StarGraph g(6);
  FaultSet f;
  // Two faults differing only in positions {0, 2}: they fit an S_2.
  const Perm a = Perm::of({0, 1, 2, 3, 4, 5});
  f.add_vertex(a);
  f.add_vertex(a.star_move(2));
  EXPECT_EQ(minimal_enclosing_substar_dim(g, f), 2);
}

TEST(Latifi, SingleFaultGrowsToS2) {
  const StarGraph g(6);
  FaultSet f;
  f.add_vertex(g.vertex(100));
  EXPECT_EQ(minimal_enclosing_substar_dim(g, f), 2);
}

TEST(Latifi, ClusteredRingLengthIsNfactMinusMfact) {
  const StarGraph g(6);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FaultSet f = substar_clustered_faults(g, 3, seed);
    const auto res = latifi_clustered_ring(g, f);
    ASSERT_TRUE(res.has_value()) << seed;
    const auto rep = verify_healthy_ring(g, f, res->embed.ring);
    EXPECT_TRUE(rep.valid) << rep.error;
    EXPECT_EQ(rep.length,
              factorial(6) - factorial(res->m));
    EXPECT_GE(res->m, 2);
  }
}

TEST(Latifi, LargeEnclosingSubstar) {
  // Faults spread inside an S_5 of S_7: ring of 7! - 5!.
  const StarGraph g(7);
  FaultSet f;
  const Perm base = Perm::identity(7);
  f.add_vertex(base);                            // agrees with itself
  f.add_vertex(base.star_move(1));               // differs at 0,1
  f.add_vertex(base.star_move(2));               // differs at 0,2
  f.add_vertex(base.star_move(3).star_move(4));  // differs at 3,4
  const int m = minimal_enclosing_substar_dim(g, f);
  EXPECT_EQ(m, 5);  // free positions {0,1,2,3,4}
  const auto res = latifi_clustered_ring(g, f);
  ASSERT_TRUE(res.has_value());
  const auto rep = verify_healthy_ring(g, f, res->embed.ring);
  EXPECT_TRUE(rep.valid) << rep.error;
  EXPECT_EQ(rep.length, factorial(7) - factorial(5));
}

TEST(Latifi, ScatteredFaultsDefeatTheMethod) {
  // Faults chosen to disagree everywhere: m = n, method returns nothing —
  // while ours still embeds n!-2f.
  const StarGraph g(6);
  FaultSet f;
  f.add_vertex(Perm::of({0, 1, 2, 3, 4, 5}));
  f.add_vertex(Perm::of({1, 2, 3, 4, 5, 0}));
  f.add_vertex(Perm::of({2, 3, 4, 5, 0, 1}));
  EXPECT_EQ(minimal_enclosing_substar_dim(g, f), 6);
  EXPECT_FALSE(latifi_clustered_ring(g, f).has_value());
  const auto ours = embed_longest_ring(g, f);
  ASSERT_TRUE(ours.has_value());
  EXPECT_EQ(ours->ring.size(), 720u - 6);
}

TEST(Latifi, NoFaultsFullRing) {
  const StarGraph g(5);
  const auto res = latifi_clustered_ring(g, FaultSet{});
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->m, 0);
  EXPECT_EQ(res->embed.ring.size(), 120u);
}

TEST(Baselines, ThreeWayOrderingOnClusteredFaults) {
  // Clustered faults: ours (n!-2f) >= Latifi (n!-m!) relationship flips
  // with f vs m!; with f=3, m=3 : 720-6 vs 720-6 — equal; with f=2,
  // m=2: 720-4 vs 720-2 — Latifi wins? No: m=2 holds at most 2
  // faults, n!-m! = 718 > 716 = n!-2f.  Latifi can beat 2f only when
  // m! < 2f, impossible since m! >= f.  Assert ours >= Latifi - small
  // slack... in fact m! >= f and m! >= 2 imply n!-2f >= n!-2m! ; the
  // honest comparison: ours >= theirs whenever m! >= 2f, and never
  // worse than n!-2f by construction.
  const StarGraph g(6);
  const FaultSet f = substar_clustered_faults(g, 3, 11);
  const auto ours = embed_longest_ring(g, f);
  const auto lat = latifi_clustered_ring(g, f);
  const auto tseng = tseng_vertex_fault_ring(g, f);
  ASSERT_TRUE(ours && lat && tseng);
  EXPECT_GE(ours->ring.size(), lat->embed.ring.size());
  EXPECT_GT(ours->ring.size(), tseng->ring.size());
}

}  // namespace
}  // namespace starring
