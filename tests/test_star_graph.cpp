// Unit tests for the S_n model: global structure, materialization,
// bipartiteness, and the ring-checking helper.
#include <gtest/gtest.h>

#include "stargraph/star_graph.hpp"

namespace starring {
namespace {

TEST(StarGraph, SizesAndDegree) {
  const StarGraph g(6);
  EXPECT_EQ(g.n(), 6);
  EXPECT_EQ(g.num_vertices(), 720u);
  EXPECT_EQ(g.num_edges(), 720u * 5 / 2);
  EXPECT_EQ(g.degree(), 5);
}

TEST(StarGraph, NeighborIdsMatchPermMoves) {
  const StarGraph g(5);
  for (VertexId id = 0; id < g.num_vertices(); id += 13) {
    const auto nbrs = g.neighbor_ids(id);
    ASSERT_EQ(nbrs.size(), 4u);
    const Perm p = g.vertex(id);
    for (int i = 1; i < 5; ++i) {
      EXPECT_EQ(nbrs[static_cast<std::size_t>(i - 1)],
                p.star_move(i).rank());
      EXPECT_TRUE(g.adjacent_ids(id, nbrs[static_cast<std::size_t>(i - 1)]));
    }
  }
}

TEST(StarGraph, MaterializeRegular) {
  for (int n = 2; n <= 6; ++n) {
    const StarGraph sg(n);
    const Graph g = sg.materialize();
    EXPECT_EQ(g.num_vertices(), factorial(n));
    EXPECT_EQ(g.num_edges(), sg.num_edges());
    for (std::uint64_t v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(g.degree(v), static_cast<std::size_t>(n - 1));
  }
}

TEST(StarGraph, MaterializedIsBipartite) {
  for (int n = 2; n <= 6; ++n) {
    const Graph g = StarGraph(n).materialize();
    const auto res = check_bipartite(g);
    EXPECT_TRUE(res.is_bipartite) << "S_" << n;
  }
}

TEST(StarGraph, BipartitionMatchesParity) {
  const StarGraph sg(5);
  const Graph g = sg.materialize();
  const auto res = check_bipartite(g);
  ASSERT_TRUE(res.is_bipartite);
  // The 2-colouring must coincide with permutation parity (up to
  // swapping colour names).
  const int c0 = res.color[0];
  const int p0 = sg.vertex(0).parity();
  for (VertexId id = 0; id < sg.num_vertices(); ++id) {
    const bool same_color = res.color[id] == c0;
    const bool same_parity = sg.vertex(id).parity() == p0;
    EXPECT_EQ(same_color, same_parity) << id;
  }
}

TEST(StarGraph, S3IsSixCycle) {
  const StarGraph sg(3);
  const Graph g = sg.materialize();
  EXPECT_EQ(g.num_vertices(), 6u);
  for (std::uint64_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  // Connected 2-regular graph on 6 vertices = C6.
  std::vector<std::uint8_t> blocked(6, 0);
  EXPECT_EQ(reachable_count(g, 0, blocked), 6u);
}

TEST(StarGraph, StarGraphIsConnected) {
  for (int n = 2; n <= 6; ++n) {
    const Graph g = StarGraph(n).materialize();
    std::vector<std::uint8_t> blocked(g.num_vertices(), 0);
    EXPECT_EQ(reachable_count(g, 0, blocked), g.num_vertices());
  }
}

TEST(StarGraph, IsStarRingAcceptsS3Cycle) {
  const StarGraph sg(3);
  // Walk the 6-cycle from the identity.
  std::vector<VertexId> ring;
  Perm p = Perm::identity(3);
  int dim = 1;
  for (int i = 0; i < 6; ++i) {
    ring.push_back(p.rank());
    p = p.star_move(dim);
    dim = dim == 1 ? 2 : 1;
  }
  EXPECT_TRUE(is_star_ring(sg, ring));
}

TEST(StarGraph, IsStarRingRejectsBadInput) {
  const StarGraph sg(4);
  EXPECT_FALSE(is_star_ring(sg, {0, 1}));                   // too short
  EXPECT_FALSE(is_star_ring(sg, {0, 1, 1}));                // repeat
  EXPECT_FALSE(is_star_ring(sg, {0, 1, factorial(4) + 5}));  // out of range
}

TEST(StarGraph, VertexIdRoundTrip) {
  const StarGraph g(7);
  for (VertexId id = 0; id < g.num_vertices(); id += 101)
    EXPECT_EQ(g.id_of(g.vertex(id)), id);
}

}  // namespace
}  // namespace starring
