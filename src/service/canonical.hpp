// Symmetry canonicalization of fault sets.
//
// S_n is vertex-transitive under symbol relabelings (perm relabel()):
// the instance (n, F) and the instance (n, g∘F) are isomorphic, and a
// healthy ring of one relabels into a healthy ring of the other.  The
// paper leans on the same symmetry when Lemma 2 may assume a convenient
// partition position; the service leans on it to make its result cache
// count: every request is first mapped to a canonical representative of
// its equivalence class, so one stored embedding answers the whole
// class.
//
// Canonical choice: among the relabelings that move some fault vertex
// (or, failing vertex faults, some faulty-edge endpoint) to the
// identity permutation, take the one whose image fault set serializes
// lexicographically smallest.  The candidate set is itself
// relabeling-equivariant, so the canonical form is an invariant of the
// class: canonicalize(n, F.relabeled(h)) and canonicalize(n, F) agree
// on `faults` and `key` for every h (test_canonical asserts this).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "perm/permutation.hpp"

namespace starring {

struct CanonicalForm {
  /// The relabeling g with faults == original.relabeled(g); apply
  /// inverse_of(to_canonical) to canonical-frame vertices to return to
  /// the caller's frame.
  Perm to_canonical;
  /// The canonical representative of the fault-set class.
  FaultSet faults;
  /// Deterministic serialization of (n, faults): the cache key.
  std::string key;
};

/// Canonicalize the instance (n, faults).  n must be in [1, kMaxN];
/// the fault-free class canonicalizes to itself under the identity.
CanonicalForm canonicalize(int n, const FaultSet& faults);

/// Apply the relabeling g to every vertex of a ring/path given as
/// Lehmer ranks of S_n.  Relabelings are automorphisms, so adjacency,
/// simplicity, and fault avoidance (w.r.t. the relabeled fault set)
/// are preserved vertex by vertex.
std::vector<VertexId> relabel_ring(std::span<const VertexId> ring,
                                   const Perm& g, int n);

}  // namespace starring
