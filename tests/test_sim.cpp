// Tests for the discrete-event ring-network simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "core/ring_embedder.hpp"
#include "sim/ring_sim.hpp"

namespace starring {
namespace {

std::vector<VertexId> ring_of(std::size_t p) {
  std::vector<VertexId> r(p);
  std::iota(r.begin(), r.end(), 0ULL);
  return r;
}

TEST(Sim, TokenRingMessageCount) {
  RingNetworkSim sim(ring_of(10), SimParams{});
  const auto m = sim.run_token_ring(3);
  EXPECT_EQ(m.messages, 30u);
  EXPECT_EQ(m.participants, 10u);
  EXPECT_GT(m.completion_time_us, 0.0);
}

TEST(Sim, TokenRingScalesWithRounds) {
  RingNetworkSim sim(ring_of(8), SimParams{});
  const auto one = sim.run_token_ring(1);
  const auto four = sim.run_token_ring(4);
  EXPECT_NEAR(four.completion_time_us, 4.0 * one.completion_time_us,
              0.25 * one.completion_time_us);
}

TEST(Sim, AllreduceStepCount) {
  const std::size_t p = 12;
  RingNetworkSim sim(ring_of(p), SimParams{});
  const auto m = sim.run_allreduce();
  EXPECT_EQ(m.messages, 2 * (p - 1) * p);
  EXPECT_GT(m.completion_time_us, 0.0);
}

TEST(Sim, AllreduceTimeGrowsLinearly) {
  SimParams params;
  RingNetworkSim small(ring_of(16), params);
  RingNetworkSim big(ring_of(64), params);
  const auto ts = small.run_allreduce();
  const auto tb = big.run_allreduce();
  // 2(p-1) steps: the big ring takes roughly 4x longer.
  EXPECT_GT(tb.completion_time_us, 3.0 * ts.completion_time_us);
  EXPECT_LT(tb.completion_time_us, 6.0 * ts.completion_time_us);
}

TEST(Sim, ParticipantsPerMicrosecondFavorsMoreNodesPerTime) {
  // The E7 metric: a longer ring has more participants; per unit time
  // it wins when the workload is bandwidth-bound per node.
  SimParams params;
  RingNetworkSim longer(ring_of(120), params);
  RingNetworkSim shorter(ring_of(60), params);
  const auto ml = longer.run_neighbor_exchange(10);
  const auto ms = shorter.run_neighbor_exchange(10);
  EXPECT_EQ(ml.participants, 120u);
  EXPECT_EQ(ms.participants, 60u);
  // Neighbour exchange is fully concurrent: time is ~constant in ring
  // size, so participants/us roughly doubles.
  EXPECT_GT(ml.participants_per_us, 1.5 * ms.participants_per_us);
}

TEST(Sim, NeighborExchangeMessageCount) {
  RingNetworkSim sim(ring_of(9), SimParams{});
  const auto m = sim.run_neighbor_exchange(5);
  EXPECT_EQ(m.messages, 2u * 9u * 5u);
}

TEST(Sim, DeterministicAcrossRuns) {
  RingNetworkSim a(ring_of(20), SimParams{});
  RingNetworkSim b(ring_of(20), SimParams{});
  EXPECT_EQ(a.run_allreduce().completion_time_us,
            b.run_allreduce().completion_time_us);
}

TEST(Sim, JitterMakesLinksUnequal) {
  SimParams params;
  params.jitter_frac = 0.5;
  // Rings over different vertex ids get different jitter patterns.
  std::vector<VertexId> r1 = ring_of(10);
  std::vector<VertexId> r2 = ring_of(10);
  for (auto& v : r2) v += 1000;
  RingNetworkSim a(r1, params);
  RingNetworkSim c(r2, params);
  EXPECT_NE(a.run_token_ring(1).completion_time_us,
            c.run_token_ring(1).completion_time_us);
}

TEST(Sim, RunsOnRealEmbeddedRing) {
  const StarGraph g(5);
  const auto res = embed_hamiltonian_cycle(g);
  ASSERT_TRUE(res.has_value());
  RingNetworkSim sim(res->ring, SimParams{});
  const auto m = sim.run_allreduce();
  EXPECT_EQ(m.participants, 120u);
  EXPECT_GT(m.completion_time_us, 0.0);
  EXPECT_EQ(m.bytes_moved, m.messages * SimParams{}.message_bytes);
}

TEST(Sim, BandwidthAffectsCompletionTime) {
  SimParams slow;
  slow.bandwidth_bpus = 64.0;
  SimParams fast;
  fast.bandwidth_bpus = 4096.0;
  RingNetworkSim a(ring_of(16), slow);
  RingNetworkSim b(ring_of(16), fast);
  EXPECT_GT(a.run_allreduce().completion_time_us,
            b.run_allreduce().completion_time_us);
}

}  // namespace
}  // namespace starring
