// Unit tests for the generic graph toolkit, including the exhaustive
// small-graph searches that back the in-block oracle and experiment E3.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph.hpp"

namespace starring {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

TEST(Graph, AddEdgeDeduplicates) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 4u);
  EXPECT_EQ(g.degree(2), 3u);
}

TEST(Graph, ValidCycleDetection) {
  const Graph g = cycle_graph(6);
  std::vector<std::uint64_t> cyc{0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(is_valid_cycle(g, cyc));
  std::vector<std::uint64_t> not_cyc{0, 1, 2, 4, 3, 5};
  EXPECT_FALSE(is_valid_cycle(g, not_cyc));
  std::vector<std::uint64_t> repeated{0, 1, 2, 3, 4, 0};
  EXPECT_FALSE(is_valid_cycle(g, repeated));
  std::vector<std::uint64_t> too_short{0, 1};
  EXPECT_FALSE(is_valid_cycle(g, too_short));
}

TEST(Graph, ValidPathDetection) {
  const Graph g = path_graph(5);
  std::vector<std::uint64_t> p{1, 2, 3};
  EXPECT_TRUE(is_valid_path(g, p));
  std::vector<std::uint64_t> gap{0, 2};
  EXPECT_FALSE(is_valid_path(g, gap));
  std::vector<std::uint64_t> empty;
  EXPECT_FALSE(is_valid_path(g, empty));
  std::vector<std::uint64_t> single{3};
  EXPECT_TRUE(is_valid_path(g, single));
}

TEST(Graph, BipartiteEvenCycle) {
  const auto res = check_bipartite(cycle_graph(8));
  EXPECT_TRUE(res.is_bipartite);
}

TEST(Graph, NotBipartiteOddCycle) {
  const auto res = check_bipartite(cycle_graph(7));
  EXPECT_FALSE(res.is_bipartite);
}

TEST(Graph, BipartiteColoringConsistent) {
  const Graph g = cycle_graph(10);
  const auto res = check_bipartite(g);
  ASSERT_TRUE(res.is_bipartite);
  for (std::uint64_t u = 0; u < 10; ++u)
    for (auto v : g.neighbors(u)) EXPECT_NE(res.color[u], res.color[v]);
}

TEST(Graph, ReachableCountWithBlocked) {
  const Graph g = path_graph(7);
  std::vector<std::uint8_t> blocked(7, 0);
  EXPECT_EQ(reachable_count(g, 0, blocked), 7u);
  blocked[3] = 1;
  EXPECT_EQ(reachable_count(g, 0, blocked), 3u);
  EXPECT_EQ(reachable_count(g, 5, blocked), 3u);
}

SmallGraph small_cycle(int n) {
  SmallGraph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

SmallGraph small_complete(int n) {
  SmallGraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

TEST(SmallGraph, EdgeOps) {
  SmallGraph g(5);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(3, 1));
  g.remove_edge(1, 3);
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(SmallGraph, LongestPathOnCycle) {
  const SmallGraph g = small_cycle(8);
  // Longest 0->1 path goes the long way round: all 8 vertices.
  const auto p = longest_path(g, 0, 1, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 8u);
  EXPECT_EQ(p->front(), 0);
  EXPECT_EQ(p->back(), 1);
}

TEST(SmallGraph, LongestPathAvoidsForbidden) {
  const SmallGraph g = small_cycle(8);
  // Forbidding vertex 7 forces the short way: 0,1 only... 0->1 direct.
  const auto p = longest_path(g, 0, 1, 1ULL << 7);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 2u);
}

TEST(SmallGraph, LongestPathNoPath) {
  SmallGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(longest_path(g, 0, 3, 0).has_value());
}

TEST(SmallGraph, LongestPathStartForbidden) {
  const SmallGraph g = small_cycle(4);
  EXPECT_FALSE(longest_path(g, 0, 2, 1ULL << 0).has_value());
}

TEST(SmallGraph, PathWithExactVerticesFindsHamPath) {
  const SmallGraph g = small_complete(6);
  const auto p = path_with_exact_vertices(g, 0, 5, 0, 6);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 6u);
}

TEST(SmallGraph, PathWithExactVerticesInfeasibleCount) {
  // On a C6, an all-vertex path exists only between adjacent endpoints.
  const SmallGraph g = small_cycle(6);
  EXPECT_TRUE(path_with_exact_vertices(g, 0, 1, 0, 6).has_value());
  EXPECT_FALSE(path_with_exact_vertices(g, 0, 2, 0, 6).has_value());
  EXPECT_FALSE(path_with_exact_vertices(g, 0, 3, 0, 6).has_value());
}

TEST(SmallGraph, PathTrivialEndpoints) {
  const SmallGraph g = small_cycle(5);
  const auto p = path_with_exact_vertices(g, 2, 2, 0, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 1u);
  EXPECT_FALSE(path_with_exact_vertices(g, 2, 2, 0, 3).has_value());
}

TEST(SmallGraph, LongestCycleFindsWholeCycle) {
  const SmallGraph g = small_cycle(9);
  const auto res = longest_cycle(g, 0);
  EXPECT_EQ(res.length, 9);
}

TEST(SmallGraph, LongestCycleWithForbidden) {
  const SmallGraph g = small_complete(6);
  const auto res = longest_cycle(g, (1ULL << 0) | (1ULL << 1));
  EXPECT_EQ(res.length, 4);
}

TEST(SmallGraph, LongestCycleAcyclic) {
  SmallGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto res = longest_cycle(g, 0);
  EXPECT_EQ(res.length, 0);
  EXPECT_TRUE(res.cycle.empty());
}

TEST(SmallGraph, LongestCycleWitnessIsValid) {
  const SmallGraph g = small_complete(7);
  const auto res = longest_cycle(g, 1ULL << 3);
  ASSERT_EQ(res.length, 6);
  for (std::size_t i = 0; i < res.cycle.size(); ++i) {
    EXPECT_NE(res.cycle[i], 3);
    EXPECT_TRUE(g.has_edge(res.cycle[i],
                           res.cycle[(i + 1) % res.cycle.size()]));
  }
}

TEST(SmallGraph, HamiltonianCycleComplete) {
  const SmallGraph g = small_complete(8);
  const auto c = hamiltonian_cycle(g, 0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 8u);
}

TEST(SmallGraph, HamiltonianCycleMissing) {
  // A path graph has no Hamiltonian cycle.
  SmallGraph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  EXPECT_FALSE(hamiltonian_cycle(g, 0).has_value());
}

TEST(SmallGraph, HamiltonianCycleRespectForbidden) {
  const SmallGraph g = small_complete(6);
  const auto c = hamiltonian_cycle(g, 1ULL << 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 5u);
  for (int v : *c) EXPECT_NE(v, 2);
}

// Bipartite-style structural check: on the 3-cube (Q3), longest cycles
// avoiding one vertex have length 6 (8 - 2), mirroring the star-graph
// worst case the paper leans on.
TEST(SmallGraph, HypercubeFaultyLongestCycle) {
  SmallGraph q3(8);
  for (int u = 0; u < 8; ++u)
    for (int b = 0; b < 3; ++b)
      if ((u ^ (1 << b)) > u) q3.add_edge(u, u ^ (1 << b));
  const auto full = longest_cycle(q3, 0);
  EXPECT_EQ(full.length, 8);
  const auto faulty = longest_cycle(q3, 1ULL << 5);
  EXPECT_EQ(faulty.length, 6);
}

}  // namespace
}  // namespace starring
