// Lemma 2 of the paper: choosing the partition positions.
//
// Given |Fv| <= n-3 vertex faults, there is a sequence a_1, ..., a_{n-4}
// of positions such that the (a_1, ..., a_{n-4})-partition of S_n leaves
// every resulting 4-vertex (embedded S_4 block) with at most one fault.
//
// The paper's procedure: repeatedly pick a position at which at least
// two faults of one current group differ, split the groups by their
// symbol at that position, and fill the remaining positions arbitrarily.
// Progress is guaranteed because two distinct permutations always differ
// at some position other than position 0 (two permutations cannot differ
// in exactly one position).
//
// We expose two splitting heuristics for the ablation experiment E8:
//  * kFirstSplitting — the paper's "any position where a group differs";
//  * kMaxSplitting   — the position that maximizes the number of groups
//    after the split (fewer levels carry multi-fault groups).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "perm/permutation.hpp"

namespace starring {

enum class SplitHeuristic : std::uint8_t { kFirstSplitting, kMaxSplitting };

struct PartitionSelection {
  /// Chosen positions, in application order (0-based positions >= 1;
  /// the paper's a_1 ... a_{n-4} are these + 1).  Size n - 4.
  std::vector<int> positions;
  /// Largest number of faults sharing one final block.  1 (or 0) when
  /// the selection succeeded in isolating the faults.
  int max_faults_per_block = 0;
  /// Number of positions that actually split a multi-fault group (the
  /// rest were fillers).
  int effective_splits = 0;
};

/// Select n-4 partition positions.  Vertex faults are isolated by the
/// paper's splitting procedure (property P1).  Edge faults steer the
/// filler choices: a faulty link's swap dimension is preferred as a
/// partition position, which turns the link into a super-edge crossing
/// — where the exit chooser simply routes around it — instead of an
/// in-block edge that could strangle a vertex's in-block degree (the
/// clustered-at-one-vertex worst case).  Precondition: n >= 5.
PartitionSelection select_partition_positions(
    int n, const FaultSet& faults,
    SplitHeuristic heuristic = SplitHeuristic::kMaxSplitting);

/// Core routine on raw permutations (used by the FaultSet overload and
/// directly testable): separate `items` with `count` positions; after
/// splitting is exhausted, fill remaining slots from
/// `preferred_fillers` (in order) before arbitrary positions.
/// `forced_first` positions are taken unconditionally (in order) before
/// any greedy choice — the longest-path driver uses this to guarantee a
/// position separating its two endpoints.
PartitionSelection select_positions_for(int n, std::span<const Perm> items,
                                        int count, SplitHeuristic heuristic,
                                        std::span<const int> preferred_fillers = {},
                                        std::span<const int> forced_first = {});

/// Swap dimensions of the faulty links, most frequent first (the
/// preferred filler order shared by the ring and path drivers).
std::vector<int> edge_fault_dims(int n, const FaultSet& faults);

}  // namespace starring
